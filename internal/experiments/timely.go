package experiments

import (
	"fmt"
	"time"

	"github.com/streamtune/streamtune/internal/baselines/conttune"
	"github.com/streamtune/streamtune/internal/baselines/ds2"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// TimelyResult holds one workload x method outcome on Timely Dataflow.
type TimelyResult struct {
	Workload    string
	Method      string
	Total       int
	Parallelism map[string]int
	// Latencies holds per-epoch latencies (seconds) measured under the
	// final recommendation.
	Latencies []float64
}

// Fig8 runs the generality evaluation on the Timely flavor: final
// parallelism at 10 x Wu per method (Fig. 8a) and per-epoch latency
// distributions under the recommended configurations (Fig. 8b-d). The
// results are memoized per options and shared (read-only) between the
// fig8a and fig8bcd drivers, which render different views of one sweep.
func Fig8(opts Options) ([]*TimelyResult, error) {
	v, err := sharedArtifacts.do(fig8Key{opts: opts}, func() (any, error) {
		return fig8Compute(opts)
	})
	if err != nil {
		return nil, err
	}
	return v.([]*TimelyResult), nil
}

func fig8Compute(opts Options) ([]*TimelyResult, error) {
	ws, err := TimelyWorkloads()
	if err != nil {
		return nil, err
	}
	pt, _, err := PreTrain(engine.Timely, opts)
	if err != nil {
		return nil, err
	}

	// Each (workload, method) cell owns its engines and tuner state; the
	// shared PreTrained artifact is read-only, so the cells fan out.
	type cell struct {
		w      Workload
		method string
	}
	var cells []cell
	for _, w := range ws {
		for _, method := range []string{MethodDS2, MethodContTune, MethodStreamTune} {
			cells = append(cells, cell{w: w, method: method})
		}
	}
	return parallel.Map(len(cells), opts.Parallelism, func(i int) (*TimelyResult, error) {
		w, method := cells[i].w, cells[i].method
		g := w.Graph.Clone()
		w.SetRate(g, 10)
		ecfg := engine.DefaultConfig(engine.Timely)
		ecfg.Seed = opts.Seed
		ecfg.MeasureTicks = opts.MeasureTicks
		eng, err := engine.New(g, ecfg)
		if err != nil {
			return nil, err
		}
		initial := make(map[string]int)
		for _, op := range g.Operators() {
			initial[op.ID] = 1
		}
		if err := eng.Deploy(initial); err != nil {
			return nil, err
		}

		res := &TimelyResult{Workload: w.Name, Method: method}
		switch method {
		case MethodDS2:
			r, err := ds2.Tune(eng, ds2.DefaultOptions())
			if err != nil {
				return nil, err
			}
			res.Parallelism, res.Total = r.Parallelism, r.TotalParallelism()
		case MethodContTune:
			ct := conttune.NewTuner(conttune.DefaultOptions())
			r, err := ct.Tune(eng)
			if err != nil {
				return nil, err
			}
			res.Parallelism, res.Total = r.Parallelism, r.TotalParallelism()
		case MethodStreamTune:
			st, err := streamtune.NewTuner(pt, eng.Graph())
			if err != nil {
				return nil, err
			}
			r, err := st.Tune(eng)
			if err != nil {
				return nil, err
			}
			res.Parallelism, res.Total = r.Parallelism, r.TotalParallelism()
		}

		// Measure per-epoch latencies under the final deployment
		// with a longer window for a denser CDF.
		lcfg := ecfg
		lcfg.MeasureTicks = opts.MeasureTicks * 3
		leng, err := engine.New(w.Graph.Clone(), lcfg)
		if err != nil {
			return nil, err
		}
		w.SetRate(leng.Graph(), 10)
		if err := leng.Deploy(res.Parallelism); err != nil {
			return nil, err
		}
		m, err := leng.Run()
		if err != nil {
			return nil, err
		}
		res.Latencies = m.EpochLatencies
		return res, nil
	})
}

// Fig8aTable renders final Timely parallelism per method.
func Fig8aTable(results []*TimelyResult) *Table {
	t := &Table{
		Title:  "Fig 8a: Final parallelism on Timely Dataflow at 10xWu",
		Header: []string{"Workload", MethodDS2, MethodContTune, MethodStreamTune},
	}
	byW := map[string]map[string]*TimelyResult{}
	var order []string
	for _, r := range results {
		if byW[r.Workload] == nil {
			byW[r.Workload] = map[string]*TimelyResult{}
			order = append(order, r.Workload)
		}
		byW[r.Workload][r.Method] = r
	}
	for _, w := range order {
		row := []string{w}
		for _, m := range []string{MethodDS2, MethodContTune, MethodStreamTune} {
			if r, ok := byW[w][m]; ok {
				row = append(row, fmt.Sprintf("%d", r.Total))
			} else {
				row = append(row, "/")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8LatencyTable renders per-epoch latency quantiles (the CDF summary
// of Fig. 8b-d).
func Fig8LatencyTable(results []*TimelyResult) *Table {
	t := &Table{
		Title:  "Fig 8b-d: Per-epoch latency quantiles (seconds)",
		Header: []string{"Workload", "Method", "p10", "p50", "p90", "p99"},
	}
	for _, r := range results {
		qs := quantiles(r.Latencies, 0.1, 0.5, 0.9, 0.99)
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Method,
			fmt.Sprintf("%.2f", qs[0]), fmt.Sprintf("%.2f", qs[1]),
			fmt.Sprintf("%.2f", qs[2]), fmt.Sprintf("%.2f", qs[3]),
		})
	}
	return t
}

// Fig9b measures offline pre-training time as the corpus grows. Sizes
// are numbers of executions; the paper sweeps 1k..15k DAGs.
func Fig9b(opts Options, sizes []int) (*Table, error) {
	corpus, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 9b: Offline pre-training time vs corpus size",
		Header: []string{"# executions", "training time"},
	}
	for _, size := range sizes {
		sub := corpus
		if size < corpus.Len() {
			sub = &history.Corpus{Executions: corpus.Executions[:size]}
		}
		cfg := streamtune.DefaultConfig()
		cfg.Train.Epochs = opts.TrainEpochs
		start := time.Now()
		if _, err := streamtune.PreTrain(sub, cfg); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sub.Len()),
			time.Since(start).Round(time.Millisecond).String(),
		})
	}
	return t, nil
}
