package experiments

import (
	"strings"
	"testing"

	"github.com/streamtune/streamtune/internal/engine"
)

// tiny returns sub-Quick options for tests; under -short it shrinks the
// corpus and training further so the suite stays fast (the comparative
// shapes the gated tests assert need the larger scale).
func tiny() Options {
	o := Quick()
	o.CorpusSamples = 10
	o.TrainEpochs = 5
	o.MeasureTicks = 40
	if testing.Short() {
		o.CorpusSamples = 4
		o.TrainEpochs = 2
	}
	return o
}

func TestTable2MatchesPaper(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range tab.Rows {
		if row[0] == "(Nexmark)q1" && row[1] == "bids" {
			if row[2] != "700K" || row[3] != "9M" {
				t.Fatalf("Q1 units = %v, want 700K / 9M", row)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("Q1 row missing")
	}
}

func TestFlinkWorkloadsCoverPaperSet(t *testing.T) {
	ws, err := FlinkWorkloads(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 8 {
		t.Fatalf("workloads = %d, want 8 (5 Nexmark + 3 PQP)", len(ws))
	}
	nex := 0
	for _, w := range ws {
		if w.Nexmark {
			nex++
		}
		if len(w.Units) == 0 {
			t.Errorf("%s has no rate units", w.Name)
		}
	}
	if nex != 5 {
		t.Fatalf("nexmark workloads = %d, want 5", nex)
	}
}

func TestCorpusGraphsCount(t *testing.T) {
	gs, err := CorpusGraphs(engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 61 {
		t.Fatalf("corpus population = %d structures, want 61 (5 Nexmark + 56 PQP)", len(gs))
	}
}

func TestFig4Shape(t *testing.T) {
	points, ft, wt, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 25 {
		t.Fatalf("points = %d, want 25", len(points))
	}
	// Processing ability must grow with parallelism (Fig. 4's shape) for
	// the saturated regions of both curves.
	if points[9].FilterPA <= points[0].FilterPA {
		t.Errorf("filter PA not increasing: p1=%.0f p10=%.0f", points[0].FilterPA, points[9].FilterPA)
	}
	if points[9].WindowPA <= points[0].WindowPA {
		t.Errorf("window PA not increasing: p1=%.0f p10=%.0f", points[0].WindowPA, points[9].WindowPA)
	}
	// Bottleneck thresholds exist, and the filter's is higher (it is the
	// costlier operator in this fixture, as in the paper: 14 vs 10).
	if ft <= 1 || wt <= 1 {
		t.Fatalf("thresholds = %d/%d, want both above 1", ft, wt)
	}
	if ft <= wt {
		t.Errorf("filter threshold %d not above window threshold %d", ft, wt)
	}
}

func TestFig5SumsToOne(t *testing.T) {
	tab, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no distribution rows")
	}
	var sb strings.Builder
	tab.Render(&sb)
	if !strings.Contains(sb.String(), "%") {
		t.Fatal("rendered table missing ratios")
	}
}

// TestCycleShapes runs a single-workload sweep per method and checks the
// paper's comparative claims at small scale.
func TestCycleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := tiny()
	env, err := buildEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := FlinkWorkloads(opts)
	if err != nil {
		t.Fatal(err)
	}
	var q5 Workload
	for _, w := range ws {
		if w.Name == "(Nexmark)Q5" {
			q5 = w
		}
	}
	stats := map[string]*CycleStats{}
	for _, m := range []string{MethodDS2, MethodContTune, MethodStreamTune} {
		s, err := RunCycle(q5, m, env, opts, engine.Flink)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		stats[m] = s
		if s.Processes != 20 {
			t.Fatalf("%s processes = %d, want 20 (one pattern)", m, s.Processes)
		}
		if s.FinalParallelismAt10Wu == 0 {
			t.Errorf("%s never recorded the 10xWu point", m)
		}
	}
	// StreamTune must not reconfigure more than DS2 on average (the
	// paper's headline efficiency claim).
	if stats[MethodStreamTune].AvgReconfigurations() > stats[MethodDS2].AvgReconfigurations()+0.5 {
		t.Errorf("StreamTune avg reconfigs %.2f above DS2 %.2f",
			stats[MethodStreamTune].AvgReconfigurations(), stats[MethodDS2].AvgReconfigurations())
	}
}

func TestFig11bSpeedup(t *testing.T) {
	// Direct GED is the quadratic no-pruning baseline; shrink the
	// dataset under -short where it dominates the suite's runtime.
	sizes := []int{40}
	if testing.Short() {
		sizes = []int{8}
	}
	tab, err := Fig11b(tiny(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	// The bounded search must not be slower than direct GED.
	row := tab.Rows[0]
	if !strings.HasSuffix(row[3], "x") {
		t.Fatalf("speedup cell %q malformed", row[3])
	}
}

func TestRandomDAGSet(t *testing.T) {
	set := randomDAGSet(1, 25)
	if len(set) != 25 {
		t.Fatalf("set size = %d, want 25", len(set))
	}
	names := map[string]bool{}
	for _, g := range set {
		if names[g.Name] {
			t.Fatalf("duplicate name %s", g.Name)
		}
		names[g.Name] = true
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid member: %v", err)
		}
	}
}

func TestPivotHandlesMissingMethods(t *testing.T) {
	stats := []*CycleStats{
		{Workload: "w1", Method: MethodDS2, Processes: 2, Reconfigurations: 4},
		{Workload: "w1", Method: MethodStreamTune, Processes: 2, Reconfigurations: 2},
	}
	tab := Fig7a(stats)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	if tab.Rows[0][2] != "/" {
		t.Errorf("missing ContTune cell = %q, want /", tab.Rows[0][2])
	}
}
