package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/faultinject"
	"github.com/streamtune/streamtune/internal/service"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// ChaosBenchReport is the result of the crash-recovery soak: N tenants
// tuned through the service while a seeded schedule kills the process
// at random points mid-tuning (no graceful shutdown, no final
// checkpoint) and injects checkpoint write failures and corrupted
// checkpoint files. After every kill the service restarts from the
// newest valid checkpoint and the clients replay their logs, verifying
// each replayed recommendation bit-for-bit; the soak fails on the first
// divergence. The final recommendations must equal uninterrupted
// sequential Tuner runs of the same jobs.
type ChaosBenchReport struct {
	Jobs       int   `json:"jobs"`
	KillPoints int   `json:"kill_points"`
	Seed       int64 `json:"seed"`

	// Restores counts post-kill recoveries; FallbackRestores is how many
	// of those had to skip past at least one corrupt or unreadable
	// checkpoint; FreshRestarts is how many found no usable checkpoint
	// at all (the registry was rebuilt from client logs alone).
	Restores         int `json:"restores"`
	FallbackRestores int `json:"fallback_restores"`
	FreshRestarts    int `json:"fresh_restarts"`
	// Reregistrations counts sessions readmitted because the newest
	// valid checkpoint predated them (or no checkpoint survived).
	Reregistrations int `json:"reregistrations"`

	// Injected faults survived during the soak.
	CorruptCheckpointsInjected int `json:"corrupt_checkpoints_injected"`
	WriteFailuresInjected      int `json:"write_failures_injected"`

	// Checkpointer activity accumulated across every service lifetime.
	CheckpointsWritten uint64 `json:"checkpoints_written"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`

	// RecoveryCrossChecks counts replayed recommendations compared
	// bit-for-bit against the client's write-ahead log (every one
	// matched, or the soak would have failed); ReplayedObservations
	// counts logged measurement windows re-posted to rebuild state.
	RecoveryCrossChecks  int  `json:"recovery_cross_checks"`
	ReplayedObservations int  `json:"replayed_observations"`
	RecoveryBitIdentical bool `json:"recovery_bit_identical"`

	// FinalBitIdentical records that every job's final recommendation
	// equaled its uninterrupted sequential reference.
	FinalBitIdentical bool    `json:"final_bit_identical"`
	SoakSeconds       float64 `json:"soak_seconds"`
}

// chaosJobState is one tenant's crash-surviving client: the engine and
// the write-ahead logs live here, never inside the service, so a kill
// loses only service-side state.
type chaosJobState struct {
	job    serviceBenchJob
	eng    *engine.Engine
	recLog []service.Recommendation
	metLog []*engine.JobMetrics
	final  map[string]int
}

// chaosSoak owns one soak run: the current service incarnation, its
// checkpointer, and the seeded kill/fault schedule.
type chaosSoak struct {
	pt      *streamtune.PreTrained
	cfg     service.Config
	ckptCfg service.CheckpointConfig
	rng     *rand.Rand

	// checkpointEvery is the op cadence of manual checkpoints; killGap
	// bounds the random op distance between kills.
	checkpointEvery int
	killGap         int

	killsLeft int
	opsToKill int
	opsSince  int

	r ChaosBenchReport
}

// serviceLife pairs one service incarnation with its checkpointer; a
// kill abandons the whole pair.
type serviceLife struct {
	svc *service.Service
	cp  *service.Checkpointer
}

// errKilled signals the seeded crash: the current service incarnation
// is abandoned mid-flight.
var errKilled = errors.New("chaos: injected kill")

// runChaosSoak drives every job round-robin through a service that is
// repeatedly killed and restored, replay-verifying after each kill. The
// want references are the uninterrupted sequential results; the soak
// errors on the first bit divergence, so a returned report is a pass.
func runChaosSoak(pt *streamtune.PreTrained, jobs []serviceBenchJob, opts Options, want []map[string]int, kills int, seed int64) (*ChaosBenchReport, error) {
	defer faultinject.Reset()
	dir, err := os.MkdirTemp("", "streamtune-chaos-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := service.Config{
		Workers:     opts.Parallelism,
		BatchWindow: service.DefaultConfig().BatchWindow,
		MaxBatch:    service.DefaultConfig().MaxBatch,
	}
	s := &chaosSoak{
		pt:  pt,
		cfg: cfg,
		ckptCfg: service.CheckpointConfig{
			Dir: dir,
			// The soak checkpoints manually on its op cadence; the
			// interval only gates the (unused) background loop.
			Interval: time.Hour,
			Keep:     3,
		},
		rng:             rand.New(rand.NewSource(seed)),
		checkpointEvery: 3,
		killGap:         2,
		killsLeft:       kills,
	}
	s.r = ChaosBenchReport{Jobs: len(jobs), KillPoints: kills, Seed: seed}

	states := make([]*chaosJobState, len(jobs))
	for i, job := range jobs {
		eng, err := benchEngine(job.graph, opts)
		if err != nil {
			return nil, err
		}
		states[i] = &chaosJobState{job: job, eng: eng}
	}

	life, err := s.freshLife(nil)
	if err != nil {
		return nil, err
	}
	s.scheduleKill()

	start := time.Now()
	remaining := len(states)
	for ops := 0; remaining > 0; ops++ {
		if ops > 200_000 {
			return nil, fmt.Errorf("chaos: no convergence after %d ops (%d jobs left)", ops, remaining)
		}
		st := states[ops%len(states)]
		if st.final != nil {
			continue
		}
		err := s.driveOne(life, st)
		if st.final != nil {
			// The job may converge on the very op the kill fires on —
			// count it before handling the crash or it stays counted as
			// unfinished forever.
			remaining--
		}
		if errors.Is(err, errKilled) {
			life, err = s.crashAndRestore(life)
			if err != nil {
				return nil, err
			}
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: job %s: %w", st.job.id, err)
		}
	}
	// Graceful end of soak: drain the batcher and take the final
	// checkpoint like a real shutdown would.
	life.svc.Close()
	if err := life.cp.Stop(); err != nil && !errors.Is(err, faultinject.ErrInjected) {
		return nil, fmt.Errorf("chaos: final checkpoint: %w", err)
	}
	s.harvest(life)
	s.r.SoakSeconds = time.Since(start).Seconds()

	for i, st := range states {
		if !reflect.DeepEqual(st.final, want[i]) {
			return nil, fmt.Errorf("chaos: job %s final recommendation diverged from uninterrupted run:\nchaos      %v\nsequential %v",
				st.job.id, st.final, want[i])
		}
	}
	s.r.FinalBitIdentical = true
	s.r.RecoveryBitIdentical = true
	return &s.r, nil
}

// driveOne advances one job by one protocol action against the current
// service, replaying from the client log where the restored service is
// behind, and returns errKilled when the seeded schedule fires.
func (s *chaosSoak) driveOne(life *serviceLife, st *chaosJobState) error {
	ctx := context.Background()
	info, err := life.svc.Session(st.job.id)
	if errors.Is(err, service.ErrUnknownJob) {
		// Not in the restored registry: the newest valid checkpoint
		// predates this job (or none survived). Readmit; the logs below
		// rebuild its position deterministically.
		if _, err := life.svc.Register(ctx, st.job.id, st.job.graph, st.eng.Config()); err != nil {
			return err
		}
		s.r.Reregistrations++
		return s.afterOp(life)
	}
	if err != nil {
		return err
	}

	switch info.Phase {
	case "recommend", "done":
		rec, err := life.svc.Recommend(ctx, st.job.id)
		if err != nil {
			return err
		}
		if i := rec.Iteration; i < len(st.recLog) {
			// Replay: the restored service re-derives a recommendation
			// the client already holds. Bit-identity or bust.
			if !reflect.DeepEqual(*rec, st.recLog[i]) {
				return fmt.Errorf("replayed recommendation %d diverged:\nrestored %+v\nlogged   %+v", i, *rec, st.recLog[i])
			}
			s.r.RecoveryCrossChecks++
		} else {
			st.recLog = append(st.recLog, *rec)
			if !rec.Done && rec.Deploy {
				// Novel recommendation: the client system deploys it
				// exactly once, crash or no crash.
				if err := st.eng.Deploy(rec.Parallelism); err != nil {
					return err
				}
				st.eng.Stabilize(s.pt.Config.StabilizeWait)
			}
		}
		if rec.Done {
			st.final = rec.Parallelism
		}
	case "observe":
		i := info.Iteration
		var m *engine.JobMetrics
		if i < len(st.metLog) {
			// Replay: re-post the logged window; the engine is not run
			// again, so client-side state stays exactly on its one
			// uninterrupted trajectory.
			m = st.metLog[i]
			s.r.ReplayedObservations++
		} else {
			var err error
			if m, err = st.eng.Run(); err != nil {
				return err
			}
			st.metLog = append(st.metLog, m)
		}
		if _, err := life.svc.Observe(ctx, st.job.id, m); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unexpected phase %q", info.Phase)
	}
	return s.afterOp(life)
}

// afterOp runs the checkpoint cadence and the kill schedule after every
// service operation.
func (s *chaosSoak) afterOp(life *serviceLife) error {
	s.opsSince++
	if s.opsSince >= s.checkpointEvery {
		s.opsSince = 0
		s.maybeArmCheckpointFault()
		if _, err := life.cp.CheckpointNow(); err != nil && !errors.Is(err, faultinject.ErrInjected) {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if s.killsLeft > 0 {
		s.opsToKill--
		if s.opsToKill <= 0 {
			return errKilled
		}
	}
	return nil
}

// maybeArmCheckpointFault injects, with seeded probability, either a
// corrupted checkpoint (valid write, failing checksum) or a failed
// write into the next CheckpointNow.
func (s *chaosSoak) maybeArmCheckpointFault() {
	switch p := s.rng.Float64(); {
	case p < 0.20:
		faultinject.Enable(faultinject.CheckpointCorrupt, faultinject.Times(1))
		s.r.CorruptCheckpointsInjected++
	case p < 0.30:
		faultinject.Enable(faultinject.CheckpointWrite, faultinject.Times(1))
		s.r.WriteFailuresInjected++
	}
}

// scheduleKill draws the op distance to the next kill.
func (s *chaosSoak) scheduleKill() {
	s.opsToKill = 1 + s.rng.Intn(s.killGap)
}

// harvest folds a dying (or finished) service's checkpoint counters
// into the report before the object is dropped.
func (s *chaosSoak) harvest(life *serviceLife) {
	st := life.svc.Stats()
	s.r.CheckpointsWritten += st.Checkpoint.Written
	s.r.CheckpointFailures += st.Checkpoint.Failures
}

// crashAndRestore abandons the current service incarnation — no drain,
// no final checkpoint, exactly like a kill -9 — and brings up a new one
// from the newest valid checkpoint on disk.
func (s *chaosSoak) crashAndRestore(dead *serviceLife) (*serviceLife, error) {
	s.harvest(dead)
	s.killsLeft--
	s.scheduleKill()
	// opsSince deliberately survives the crash: when kills arrive more
	// often than the checkpoint cadence, the cadence still fires across
	// incarnations, so the durable frontier keeps advancing through a
	// kill storm instead of replaying the same prefix forever.

	svc, _, skipped, err := service.RestoreFromDir(s.pt, s.cfg, s.ckptCfg.Dir)
	if err != nil {
		// Every checkpoint on disk was corrupt. The durable state is
		// gone, but the clients hold complete logs: restart empty and
		// let replay rebuild everything.
		svc = nil
		skipped = nil
	}
	if svc == nil {
		// No usable checkpoint (none written yet, or all corrupt).
		s.r.FreshRestarts++
	}
	if len(skipped) > 0 {
		s.r.FallbackRestores++
	}
	s.r.Restores++
	return s.freshLife(svc)
}

// freshLife wraps svc (or a brand-new service when nil) with a
// checkpointer resuming the on-disk sequence.
func (s *chaosSoak) freshLife(svc *service.Service) (*serviceLife, error) {
	var err error
	if svc == nil {
		if svc, err = service.New(s.pt, s.cfg); err != nil {
			return nil, err
		}
	}
	cp, err := service.NewCheckpointer(svc, s.ckptCfg)
	if err != nil {
		return nil, err
	}
	return &serviceLife{svc: svc, cp: cp}, nil
}

// ChaosBench runs the crash-recovery soak at the given scale: n tenants
// and kills injected service deaths, with every fault drawn from seed.
func ChaosBench(opts Options, n, kills int, seed int64) (*ChaosBenchReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("chaosbench: need at least one job, got %d", n)
	}
	pt, _, err := PreTrain(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	jobs, err := serviceBenchJobs(opts, n)
	if err != nil {
		return nil, err
	}

	// Uninterrupted references: one caller-owned sequential tuner per
	// job, no service, no crashes.
	want := make([]map[string]int, len(jobs))
	for i, job := range jobs {
		eng, err := benchEngine(job.graph, opts)
		if err != nil {
			return nil, err
		}
		tuner, err := streamtune.NewTuner(pt, eng.Graph())
		if err != nil {
			return nil, err
		}
		res, err := tuner.Tune(eng)
		if err != nil {
			return nil, fmt.Errorf("chaosbench: sequential tune %s: %w", job.id, err)
		}
		want[i] = res.Parallelism
	}

	return runChaosSoak(pt, jobs, opts, want, kills, seed)
}

// ChaosBenchTable renders the soak report.
func ChaosBenchTable(r *ChaosBenchReport) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Chaos soak: %d jobs, %d kills (seed %d)", r.Jobs, r.KillPoints, r.Seed),
		Header: []string{"Metric", "Value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("restores / fallback / fresh", fmt.Sprintf("%d / %d / %d", r.Restores, r.FallbackRestores, r.FreshRestarts))
	add("re-registrations", fmt.Sprintf("%d", r.Reregistrations))
	add("injected corrupt checkpoints", fmt.Sprintf("%d", r.CorruptCheckpointsInjected))
	add("injected write failures", fmt.Sprintf("%d", r.WriteFailuresInjected))
	add("checkpoints written / failed", fmt.Sprintf("%d / %d", r.CheckpointsWritten, r.CheckpointFailures))
	add("recovery cross-checks", fmt.Sprintf("%d recommendations, %d observations replayed", r.RecoveryCrossChecks, r.ReplayedObservations))
	add("recovery bit-identical", fmt.Sprintf("%v", r.RecoveryBitIdentical))
	add("final bit-identical", fmt.Sprintf("%v", r.FinalBitIdentical))
	add("soak wall clock", fmt.Sprintf("%.3fs", r.SoakSeconds))
	return t
}
