// Package experiments regenerates every table and figure of the
// StreamTune paper's evaluation (§V) on the simulated engines. Each
// Fig*/Table* function is one driver; cmd/experiments exposes them on
// the command line and bench_test.go wraps them in testing.B benches.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not a 160-core Flink cluster), but the comparative shape — who wins,
// by roughly what factor, where crossovers fall — is the reproduction
// target. EXPERIMENTS.md records paper-vs-measured for every driver.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// Options scales the evaluation. Full() reproduces the paper's setup;
// Quick() shrinks everything for CI and benchmarks.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Patterns is the number of rate-pattern permutations per query
	// (paper: 6, for 120 rate changes).
	Patterns int
	// CorpusSamples is the number of randomized historical executions
	// per job structure in the pre-training corpus.
	CorpusSamples int
	// TrainEpochs is the GNN pre-training epoch count.
	TrainEpochs int
	// PQPVariants caps the number of variants per PQP template included
	// in cycle sweeps (the corpus always uses all of them).
	PQPVariants int
	// MeasureTicks is the engine measurement window per run.
	MeasureTicks int
	// Parallelism bounds the fan-out of each parallel stage of the
	// evaluation: corpus generation, GED clustering, per-cluster GNN
	// pre-training, and the independent experiment cells (workload x
	// method, parallelism sweeps). Stages nest, so total live
	// goroutines can exceed this value — effective CPU parallelism is
	// still capped at GOMAXPROCS by the runtime. Every parallel path is
	// deterministic, so results are identical for any value; 1 runs
	// fully sequentially (the seed behavior) and values below one use
	// every CPU.
	Parallelism int
}

// Full returns the paper-scale configuration.
func Full() Options {
	return Options{Seed: 1, Patterns: 6, CorpusSamples: 40, TrainEpochs: 30, PQPVariants: 4, MeasureTicks: 100}
}

// Quick returns a configuration small enough for benches and smoke
// tests while preserving the comparative shapes.
func Quick() Options {
	return Options{Seed: 1, Patterns: 1, CorpusSamples: 15, TrainEpochs: 8, PQPVariants: 1, MeasureTicks: 50}
}

// Workload identifies one evaluated streaming job.
type Workload struct {
	// Name is the paper's label, e.g. "(Nexmark)Q1" or "(PQP)Linear".
	Name string
	// Graph is the job at one rate unit.
	Graph *dag.Graph
	// Units maps source ID to its Wu (records/second).
	Units map[string]float64
	// Nexmark reports whether this is a Nexmark query (ZeroTune is
	// evaluated only on PQP).
	Nexmark bool
}

// SetRate deploys multiplier x Wu on every source of a clone of the
// workload graph.
func (w Workload) SetRate(g *dag.Graph, multiplier float64) {
	for id, wu := range w.Units {
		op := g.Operator(id)
		if op != nil {
			op.SourceRate = wu * multiplier
		}
	}
}

// FlinkWorkloads returns the paper's eight Flink evaluation workloads:
// Nexmark Q1, Q2, Q3, Q5, Q8 and one representative variant per PQP
// template.
func FlinkWorkloads(opts Options) ([]Workload, error) {
	var out []Workload
	for _, q := range nexmark.Queries {
		g, err := nexmark.Build(q, engine.Flink)
		if err != nil {
			return nil, err
		}
		units, err := nexmark.RateUnit(q, engine.Flink)
		if err != nil {
			return nil, err
		}
		out = append(out, Workload{
			Name:    fmt.Sprintf("(Nexmark)%s", strings.ToUpper(string(q))),
			Graph:   g,
			Units:   units,
			Nexmark: true,
		})
	}
	for _, tmpl := range pqp.Templates {
		g, err := pqp.Build(tmpl, 0)
		if err != nil {
			return nil, err
		}
		units := make(map[string]float64)
		for _, i := range g.Sources() {
			units[g.OperatorAt(i).ID] = pqp.RateUnit(tmpl)
		}
		out = append(out, Workload{
			Name:  fmt.Sprintf("(PQP)%s", paperTemplateName(tmpl)),
			Graph: g,
			Units: units,
		})
	}
	return out, nil
}

// TimelyWorkloads returns the Timely evaluation set (Q3, Q5, Q8 — other
// Nexmark queries run at parallelism 1 on Timely, per §V-F).
func TimelyWorkloads() ([]Workload, error) {
	var out []Workload
	for _, q := range []nexmark.Query{nexmark.Q3, nexmark.Q5, nexmark.Q8} {
		g, err := nexmark.Build(q, engine.Timely)
		if err != nil {
			return nil, err
		}
		units, err := nexmark.RateUnit(q, engine.Timely)
		if err != nil {
			return nil, err
		}
		out = append(out, Workload{
			Name:    fmt.Sprintf("(Nexmark)%s", strings.ToUpper(string(q))),
			Graph:   g,
			Units:   units,
			Nexmark: true,
		})
	}
	return out, nil
}

func paperTemplateName(t pqp.Template) string {
	switch t {
	case pqp.Linear:
		return "Linear"
	case pqp.TwoWayJoin:
		return "2-way-join"
	case pqp.ThreeWayJoin:
		return "3-way-join"
	}
	return string(t)
}

// CorpusGraphs returns the full pre-training population: the five
// Nexmark queries plus every PQP variant (61 distinct structures,
// matching the paper's Fig. 5 corpus).
func CorpusGraphs(flavor engine.Flavor) ([]*dag.Graph, error) {
	var out []*dag.Graph
	for _, q := range nexmark.Queries {
		g, err := nexmark.Build(q, flavor)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	for _, tmpl := range pqp.Templates {
		gs, err := pqp.All(tmpl)
		if err != nil {
			return nil, err
		}
		out = append(out, gs...)
	}
	return out, nil
}

// BuildCorpus generates the pre-training corpus for the flavor. The
// result is memoized per (flavor, opts) and shared across drivers;
// callers must not mutate it.
func BuildCorpus(flavor engine.Flavor, opts Options) (*history.Corpus, error) {
	v, err := sharedArtifacts.do(corpusKey{flavor: flavor, opts: opts}, func() (any, error) {
		graphs, err := CorpusGraphs(flavor)
		if err != nil {
			return nil, err
		}
		hopts := history.DefaultOptions(flavor)
		hopts.SamplesPerGraph = opts.CorpusSamples
		hopts.Seed = opts.Seed
		hopts.Engine.MeasureTicks = opts.MeasureTicks
		hopts.Workers = opts.Parallelism
		return history.Generate(graphs, hopts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*history.Corpus), nil
}

// PreTrain builds the corpus and pre-trains StreamTune for the flavor.
// The holdout list removes job structures (by graph name) from the
// corpus before training — used by the unseen-workload case study. The
// artifact is memoized per (flavor, opts, holdout) and shared across
// drivers; callers must treat it as read-only.
func PreTrain(flavor engine.Flavor, opts Options, holdout ...string) (*streamtune.PreTrained, *history.Corpus, error) {
	key := pretrainKey{flavor: flavor, opts: opts, holdout: holdoutKey(holdout)}
	v, err := sharedArtifacts.do(key, func() (any, error) {
		corpus, err := BuildCorpus(flavor, opts)
		if err != nil {
			return nil, err
		}
		if len(holdout) > 0 {
			skip := make(map[string]bool, len(holdout))
			for _, h := range holdout {
				skip[h] = true
			}
			kept := &history.Corpus{}
			for _, ex := range corpus.Executions {
				if !skip[ex.Graph.Name] {
					kept.Executions = append(kept.Executions, ex)
				}
			}
			corpus = kept
		}
		cfg := streamtune.DefaultConfig()
		cfg.Train.Epochs = opts.TrainEpochs
		cfg.GNN.PMax = engine.DefaultConfig(flavor).MaxParallelism
		cfg.Workers = opts.Parallelism
		pt, err := streamtune.PreTrain(corpus, cfg)
		if err != nil {
			return nil, err
		}
		return pretrainArtifact{pt: pt, corpus: corpus}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	art := v.(pretrainArtifact)
	return art.pt, art.corpus, nil
}

// Table is a generic printable result: a header and rows of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	printRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// sortedKeys returns the map's keys in sorted order (stable output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
