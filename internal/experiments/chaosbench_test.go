package experiments

import "testing"

// TestChaosSoakBitIdentical is the crash-recovery acceptance run: the
// service dies at 20+ seeded points mid-tuning (with checkpoint write
// failures and corrupted checkpoint files injected along the way) and
// every restart must resume from the newest valid checkpoint with
// recommendations bit-identical to an uninterrupted run. runChaosSoak
// fails on the first divergence, so this test passing IS the
// bit-identity proof; the assertions below pin that the soak actually
// exercised what it claims to.
func TestChaosSoakBitIdentical(t *testing.T) {
	opts := tiny()
	jobs, kills := 3, 24
	if testing.Short() {
		jobs = 2
	}
	r, err := ChaosBench(opts, jobs, kills, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FinalBitIdentical || !r.RecoveryBitIdentical {
		t.Fatalf("soak not bit-identical: %+v", r)
	}
	if r.Restores < 20 {
		t.Errorf("Restores = %d, want >= 20 kill/restore cycles", r.Restores)
	}
	if r.RecoveryCrossChecks == 0 {
		t.Error("no replayed recommendation was ever cross-checked against the pre-crash log")
	}
	if r.CheckpointsWritten == 0 {
		t.Error("soak never wrote a checkpoint")
	}
	if r.CorruptCheckpointsInjected == 0 || r.WriteFailuresInjected == 0 {
		t.Errorf("fault schedule injected %d corruptions / %d write failures, want both > 0 (seed too tame)",
			r.CorruptCheckpointsInjected, r.WriteFailuresInjected)
	}
	// Every injected write failure must surface as a counted checkpoint
	// failure, not a silent success.
	if r.CheckpointFailures < uint64(r.WriteFailuresInjected) {
		t.Errorf("CheckpointFailures = %d, want >= %d injected write failures",
			r.CheckpointFailures, r.WriteFailuresInjected)
	}
}

// TestChaosSoakSeedsDiverge sanity-checks that the kill schedule really
// depends on the seed (different seeds, different fault histories)
// while both runs stay bit-identical to the uninterrupted references.
func TestChaosSoakSeedsDiverge(t *testing.T) {
	if testing.Short() {
		t.Skip("second soak run is not worth -short time")
	}
	opts := tiny()
	a, err := ChaosBench(opts, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosBench(opts, 2, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !a.FinalBitIdentical || !b.FinalBitIdentical {
		t.Fatalf("seeded soaks not bit-identical: seed1=%+v seed99=%+v", a, b)
	}
	if a.RecoveryCrossChecks == b.RecoveryCrossChecks &&
		a.CorruptCheckpointsInjected == b.CorruptCheckpointsInjected &&
		a.ReplayedObservations == b.ReplayedObservations {
		t.Errorf("seeds 1 and 99 produced identical fault histories — schedule ignores the seed:\n%+v", a)
	}
}
