package experiments

import (
	"encoding/json"
	"testing"
)

// TestScenarioBenchShape runs the adversarial-traffic suite at a tiny
// scale and asserts the grid is complete, every cell mutated
// mid-stream, and the service warm-start differential held.
func TestScenarioBenchShape(t *testing.T) {
	opts := Quick()
	opts.Parallelism = 0
	const steps = 9
	r, err := ScenarioBench(opts, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 9 {
		t.Fatalf("cells = %d, want 9 (3 traces x 3 methods)", len(r.Cells))
	}
	seen := map[string]map[string]bool{}
	mutSteps := map[string]int{}
	for _, c := range r.Cells {
		if c.Steps != steps {
			t.Errorf("%s/%s: steps = %d, want %d", c.Scenario, c.Method, c.Steps, steps)
		}
		if c.MutationStep <= 0 || c.MutationStep >= steps {
			t.Errorf("%s/%s: mutation step %d not mid-stream", c.Scenario, c.Method, c.MutationStep)
		}
		// All methods of one scenario mutate at the same seeded step.
		if prev, ok := mutSteps[c.Scenario]; ok && prev != c.MutationStep {
			t.Errorf("%s: mutation steps differ across methods: %d vs %d", c.Scenario, prev, c.MutationStep)
		}
		mutSteps[c.Scenario] = c.MutationStep
		if c.Method == MethodDS2 && c.WarmStart {
			t.Errorf("%s: DS2 is stateless, cannot warm-start", c.Scenario)
		}
		if seen[c.Scenario] == nil {
			seen[c.Scenario] = map[string]bool{}
		}
		seen[c.Scenario][c.Method] = true
		if c.Reconfigurations <= 0 {
			t.Errorf("%s/%s: no reconfigurations over %d rate changes", c.Scenario, c.Method, steps)
		}
	}
	for _, name := range []string{"bursty", "diurnal", "skewed"} {
		for _, m := range []string{MethodDS2, MethodContTune, MethodStreamTune} {
			if !seen[name][m] {
				t.Errorf("missing cell %s/%s", name, m)
			}
		}
	}
	if !r.MutationBitIdentical {
		t.Error("service mutate-then-tune diverged from the caller-owned reference")
	}
	if !r.MutationWarmStart {
		t.Error("mutation differential did not exercise the warm-start path")
	}

	// The report must round-trip through JSON (it is committed as
	// BENCH_scenarios.json and re-read by benchguard).
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back ScenarioBenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.StreamTuneReconfigurations != r.StreamTuneReconfigurations || len(back.Cells) != len(r.Cells) {
		t.Error("report did not survive a JSON round-trip")
	}
}
