package experiments

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/pqp"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// withWorkers returns tiny options pinned to a worker count.
func withWorkers(workers int) Options {
	o := tiny()
	o.Parallelism = workers
	return o
}

// fig4Fingerprint hashes every Fig4 sample and threshold.
func fig4Fingerprint(t *testing.T, opts Options) string {
	t.Helper()
	points, ft, wt, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "ft=%d wt=%d\n", ft, wt)
	for _, p := range points {
		fmt.Fprintf(h, "%d|%.12e|%.12e\n", p.Parallelism, p.FilterPA, p.WindowPA)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestFig4WorkerInvariant asserts the parallelism sweep produces
// bit-identical measurements at Parallelism=1 and Parallelism=8.
func TestFig4WorkerInvariant(t *testing.T) {
	seq := fig4Fingerprint(t, withWorkers(1))
	par := fig4Fingerprint(t, withWorkers(8))
	if seq != par {
		t.Fatalf("Fig4 diverged: workers=1 %s vs workers=8 %s", seq, par)
	}
}

// corpusFingerprint hashes the generated corpus content.
func corpusFingerprint(t *testing.T, opts Options) string {
	t.Helper()
	corpus, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, ex := range corpus.Executions {
		fmt.Fprintf(h, "%s|%v|%d|%.12e\n", ex.Graph.Name, ex.Labels, ex.TotalParallelism, ex.Deficit)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestBuildCorpusWorkerInvariant asserts corpus generation is identical
// across worker counts. The cache is keyed on the full option struct
// (including Parallelism), so the two corpora are genuinely rebuilt.
func TestBuildCorpusWorkerInvariant(t *testing.T) {
	ResetArtifactCache()
	defer ResetArtifactCache()
	seq := corpusFingerprint(t, withWorkers(1))
	par := corpusFingerprint(t, withWorkers(8))
	if seq != par {
		t.Fatalf("corpus diverged: workers=1 %s vs workers=8 %s", seq, par)
	}
}

// TestBuildCorpusMemoized asserts the artifact cache returns the same
// corpus instance for repeated identical requests and rebuilds after a
// reset.
func TestBuildCorpusMemoized(t *testing.T) {
	ResetArtifactCache()
	defer ResetArtifactCache()
	opts := withWorkers(1)
	a, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeated BuildCorpus with identical options rebuilt the corpus")
	}
	ResetArtifactCache()
	c, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("BuildCorpus returned a cached corpus after ResetArtifactCache")
	}
}

// TestPreTrainHoldoutDistinctFromFull asserts the holdout variant is
// cached under its own key rather than aliasing the full artifact.
func TestPreTrainHoldoutDistinctFromFull(t *testing.T) {
	if testing.Short() {
		t.Skip("GED-clusters the full 61-graph corpus twice")
	}
	ResetArtifactCache()
	defer ResetArtifactCache()
	opts := withWorkers(1)
	_, full, err := PreTrain(engine.Flink, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, held, err := PreTrain(engine.Flink, opts, full.Executions[0].Graph.Name)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() == held.Len() {
		t.Fatalf("holdout corpus len %d not reduced from %d", held.Len(), full.Len())
	}
}

// smallEnv pre-trains on a four-structure corpus (no elbow search), so
// concurrent-cell tests stay cheap enough for race mode under -short.
func smallEnv(t *testing.T) cycleEnv {
	t.Helper()
	q2, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := nexmark.Build(nexmark.Q3, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := pqp.Build(pqp.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	two, err := pqp.Build(pqp.TwoWayJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	hopts := history.DefaultOptions(engine.Flink)
	hopts.SamplesPerGraph = 6
	hopts.Engine.MeasureTicks = 30
	corpus, err := history.Generate([]*dag.Graph{q2, q3, lin, two}, hopts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamtune.DefaultConfig()
	cfg.Train.Epochs = 2
	cfg.Cluster.K = 2
	pt, err := streamtune.PreTrain(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cycleEnv{pt: pt}
}

// TestRunCycleCellsWorkerInvariant drives concurrent workload x method
// tuning cells — the unit Sweep parallelizes — against a shared
// PreTrained artifact and asserts the statistics match a sequential
// run. Unlike TestSweepWorkerInvariant this stays cheap enough to run
// under -race -short, giving the concurrent cell path standing race
// coverage in CI.
func TestRunCycleCellsWorkerInvariant(t *testing.T) {
	env := smallEnv(t)
	q2, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	units, err := nexmark.RateUnit(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Name: "(Nexmark)Q2", Graph: q2, Units: units, Nexmark: true}
	opts := tiny()
	opts.Patterns = 1
	opts.MeasureTicks = 30
	methods := []string{MethodDS2, MethodContTune, MethodStreamTune}

	run := func(workers int) []*CycleStats {
		o := opts
		o.Parallelism = workers
		stats, err := parallel.Map(len(methods), workers, func(i int) (*CycleStats, error) {
			return RunCycle(w, methods[i], env, o, engine.Flink)
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	ref := run(1)
	par := run(8)
	for i := range ref {
		a, b := ref[i], par[i]
		if a.Method != b.Method || a.Processes != b.Processes ||
			a.Reconfigurations != b.Reconfigurations ||
			a.BackpressureEvents != b.BackpressureEvents ||
			a.FinalParallelismAt10Wu != b.FinalParallelismAt10Wu {
			t.Fatalf("cell %s diverged: workers=1 %+v vs workers=8 %+v", a.Method, a, b)
		}
		for k, v := range a.FinalParallelism {
			if b.FinalParallelism[k] != v {
				t.Fatalf("cell %s: final parallelism[%s] = %d, want %d",
					a.Method, k, b.FinalParallelism[k], v)
			}
		}
	}
}

// sweepFingerprint hashes every deterministic field of a sweep: the
// wall-clock RecommendTime is excluded (it is genuine measured time),
// the simulated TuneDurations are included.
func sweepFingerprint(t *testing.T, opts Options) string {
	t.Helper()
	stats, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, s := range stats {
		fmt.Fprintf(h, "%s|%s|p=%d r=%d bp=%d f10=%d durs=%v\n",
			s.Workload, s.Method, s.Processes, s.Reconfigurations,
			s.BackpressureEvents, s.FinalParallelismAt10Wu, s.TuneDurations)
		keys := make([]string, 0, len(s.FinalParallelism))
		for k := range s.FinalParallelism {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "  %s=%d\n", k, s.FinalParallelism[k])
		}
		for _, trace := range s.CPUTraces {
			fmt.Fprintf(h, "  cpu=%.12v\n", trace)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestSweepWorkerInvariant asserts the full Flink evaluation sweep —
// corpus, clustering, pre-training, and all workload x method tuning
// cells — produces identical statistics at Parallelism=1 and
// Parallelism=8. This is the end-to-end determinism contract behind the
// -workers flag of cmd/experiments.
func TestSweepWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep integration test")
	}
	ResetArtifactCache()
	defer ResetArtifactCache()
	seq := sweepFingerprint(t, withWorkers(1))
	par := sweepFingerprint(t, withWorkers(8))
	if seq != par {
		t.Fatalf("sweep diverged: workers=1 %s vs workers=8 %s", seq, par)
	}
}

// TestFig8WorkerInvariant asserts the Timely generality evaluation is
// identical across worker counts.
func TestFig8WorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("timely integration test")
	}
	ResetArtifactCache()
	defer ResetArtifactCache()
	run := func(opts Options) string {
		results, err := Fig8(opts)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		for _, r := range results {
			fmt.Fprintf(h, "%s|%s|%d|%.12v\n", r.Workload, r.Method, r.Total, r.Latencies)
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	seq := run(withWorkers(1))
	par := run(withWorkers(8))
	if seq != par {
		t.Fatalf("Fig8 diverged: workers=1 %s vs workers=8 %s", seq, par)
	}
}
