// Package bottleneck implements Algorithm 1 of the StreamTune paper:
// systematic labeling of operator-level bottleneck indicators from
// job-level runtime metrics.
package bottleneck

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

// Label values. Unlabeled operators carry no training signal: under
// job-level backpressure, the upstream rates of operators away from the
// bottleneck frontier are distorted, so their adequacy is inconclusive
// (paper §IV-A).
const (
	Unlabeled     = -1
	NonBottleneck = 0
	Bottleneck    = 1
)

// Label runs Algorithm 1 on one measurement window of a Flink-flavor
// engine and returns a label per operator, indexed by graph position.
//
//  1. All operators start Unlabeled.
//  2. If no job-level backpressure is observed, all operators are
//     labeled NonBottleneck.
//  3. Otherwise, for each operator under backpressure whose downstream
//     operators are all backpressure-free, each direct downstream
//     operator d is labeled Bottleneck if its resource utilization
//     exceeds cpuThreshold, else NonBottleneck.
func Label(g *dag.Graph, m *engine.JobMetrics, cpuThreshold float64) ([]int, error) {
	n := g.NumOperators()
	if len(m.Ops) != n {
		return nil, fmt.Errorf("bottleneck: metrics cover %d operators, graph has %d", len(m.Ops), n)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Unlabeled
	}

	if !m.Backpressured {
		for i := range labels {
			labels[i] = NonBottleneck
		}
		return labels, nil
	}

	// Starved sources are bottlenecks in their own right: they cannot
	// ingest the offered rate, yet never accrue blocked time (there is
	// nothing upstream to backpressure). Sources that are neither
	// starved nor blocked are adequate; blocked sources stay unlabeled,
	// as in the paper's Fig. 3.
	for i := 0; i < n; i++ {
		if g.OperatorAt(i).Type != dag.Source {
			continue
		}
		switch {
		case m.Ops[i].Bottleneck:
			labels[i] = Bottleneck
		case !m.Ops[i].UnderBackpressure:
			labels[i] = NonBottleneck
		}
	}

	underBP := make([]bool, n)
	for _, om := range m.Ops {
		underBP[om.Index] = om.UnderBackpressure
	}

	for i := 0; i < n; i++ {
		if !underBP[i] {
			continue
		}
		frontier := true
		for _, d := range g.Downstream(i) {
			if underBP[d] {
				frontier = false
				break
			}
		}
		if !frontier {
			continue
		}
		for _, d := range g.Downstream(i) {
			if m.Ops[d].CPULoad > cpuThreshold {
				labels[d] = Bottleneck
			} else if labels[d] != Bottleneck {
				labels[d] = NonBottleneck
			}
		}
	}
	return labels, nil
}

// LabelTimely derives operator labels on the Timely flavor, where there
// is no backpressure mechanism: an operator is a bottleneck when its
// consumption rate falls below the engine's threshold fraction of its
// combined upstream output rate (paper §V-B). Every operator receives a
// definite label.
func LabelTimely(g *dag.Graph, m *engine.JobMetrics) ([]int, error) {
	n := g.NumOperators()
	if len(m.Ops) != n {
		return nil, fmt.Errorf("bottleneck: metrics cover %d operators, graph has %d", len(m.Ops), n)
	}
	labels := make([]int, n)
	for _, om := range m.Ops {
		if om.Bottleneck {
			labels[om.Index] = Bottleneck
		} else {
			labels[om.Index] = NonBottleneck
		}
	}
	return labels, nil
}

// ForFlavor dispatches to Label or LabelTimely based on the metrics'
// flavor, using the engine config's CPU threshold.
func ForFlavor(g *dag.Graph, m *engine.JobMetrics, cfg engine.Config) ([]int, error) {
	if m.Flavor == engine.Timely {
		return LabelTimely(g, m)
	}
	return Label(g, m, cfg.CPULoadThreshold)
}

// Bottlenecks returns the graph indices labeled Bottleneck.
func Bottlenecks(labels []int) []int {
	var out []int
	for i, l := range labels {
		if l == Bottleneck {
			out = append(out, i)
		}
	}
	return out
}
