package bottleneck

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

// diamond builds the paper's Fig. 3 topology: O1 -> {O2, O3}, O2 -> O4.
func diamond() *dag.Graph {
	g := dag.New("fig3")
	g.MustAddOperator(&dag.Operator{ID: "o1", Type: dag.Source, SourceRate: 1000})
	g.MustAddOperator(&dag.Operator{ID: "o2", Type: dag.Map})
	g.MustAddOperator(&dag.Operator{ID: "o3", Type: dag.Map})
	g.MustAddOperator(&dag.Operator{ID: "o4", Type: dag.Sink})
	g.MustAddEdge("o1", "o2")
	g.MustAddEdge("o1", "o3")
	g.MustAddEdge("o2", "o4")
	return g
}

// metricsFor fabricates a JobMetrics for the diamond graph.
func metricsFor(g *dag.Graph, bp map[string]bool, cpu map[string]float64) *engine.JobMetrics {
	m := &engine.JobMetrics{Flavor: engine.Flink}
	for i, op := range g.Operators() {
		om := engine.OpMetrics{
			ID: op.ID, Index: i,
			UnderBackpressure: bp[op.ID],
			CPULoad:           cpu[op.ID],
		}
		if om.UnderBackpressure {
			m.Backpressured = true
		}
		m.Ops = append(m.Ops, om)
	}
	return m
}

func TestLabelNoBackpressureAllZero(t *testing.T) {
	g := diamond()
	m := metricsFor(g, nil, nil)
	labels, err := Label(g, m, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range labels {
		if l != NonBottleneck {
			t.Fatalf("label[%d] = %d, want 0 when no backpressure", i, l)
		}
	}
}

func TestLabelFig3Example(t *testing.T) {
	// Paper Fig. 3: O1 under backpressure; O2 at 98% CPU, O3 at 15%.
	// Expected: O2 bottleneck (1), O3 non-bottleneck (0), O4 unlabeled
	// in Algorithm 1's frontier pass (it is downstream of the
	// backpressure frontier's children, not a direct child of a
	// frontier operator).
	g := diamond()
	m := metricsFor(g,
		map[string]bool{"o1": true},
		map[string]float64{"o2": 0.98, "o3": 0.15, "o4": 0.10})
	labels, err := Label(g, m, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	i2, _ := g.IndexOf("o2")
	i3, _ := g.IndexOf("o3")
	i4, _ := g.IndexOf("o4")
	i1, _ := g.IndexOf("o1")
	if labels[i2] != Bottleneck {
		t.Errorf("o2 label = %d, want 1", labels[i2])
	}
	if labels[i3] != NonBottleneck {
		t.Errorf("o3 label = %d, want 0", labels[i3])
	}
	if labels[i4] != Unlabeled {
		t.Errorf("o4 label = %d, want -1", labels[i4])
	}
	if labels[i1] != Unlabeled {
		t.Errorf("o1 label = %d, want -1 (backpressured op itself is inconclusive)", labels[i1])
	}
}

func TestLabelSkipsNonFrontierOps(t *testing.T) {
	// Chain s -> a -> b -> sink with both s and a under backpressure:
	// only a is on the frontier (its downstream b is BP-free), so only
	// b gets labeled.
	g := dag.New("chain")
	g.MustAddOperator(&dag.Operator{ID: "s", Type: dag.Source, SourceRate: 1})
	g.MustAddOperator(&dag.Operator{ID: "a", Type: dag.Map})
	g.MustAddOperator(&dag.Operator{ID: "b", Type: dag.Map})
	g.MustAddOperator(&dag.Operator{ID: "k", Type: dag.Sink})
	g.MustAddEdge("s", "a")
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "k")
	m := metricsFor(g,
		map[string]bool{"s": true, "a": true},
		map[string]float64{"b": 0.95, "k": 0.05})
	labels, err := Label(g, m, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	ib, _ := g.IndexOf("b")
	ik, _ := g.IndexOf("k")
	ia, _ := g.IndexOf("a")
	if labels[ib] != Bottleneck {
		t.Errorf("b = %d, want 1", labels[ib])
	}
	if labels[ik] != Unlabeled {
		t.Errorf("k = %d, want -1", labels[ik])
	}
	if labels[ia] != Unlabeled {
		t.Errorf("a = %d, want -1 (not labeled; its own rate is distorted)", labels[ia])
	}
}

func TestLabelMetricsMismatch(t *testing.T) {
	g := diamond()
	m := &engine.JobMetrics{Flavor: engine.Flink, Ops: make([]engine.OpMetrics, 2)}
	if _, err := Label(g, m, 0.6); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := LabelTimely(g, m); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestLabelEndToEndOnEngine(t *testing.T) {
	// Starve one operator on a real engine run and confirm Algorithm 1
	// pins it as the bottleneck.
	g := dag.New("e2e")
	g.MustAddOperator(&dag.Operator{ID: "src", Type: dag.Source, SourceRate: 2e6, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{ID: "map", Type: dag.Map, Selectivity: 1, TupleWidthIn: 64, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{ID: "agg", Type: dag.Aggregate, Selectivity: 0.5, TupleWidthIn: 64, TupleWidthOut: 32})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 32})
	g.MustAddEdge("src", "map")
	g.MustAddEdge("map", "agg")
	g.MustAddEdge("agg", "sink")

	cfg := engine.DefaultConfig(engine.Flink)
	e, err := engine.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := engine.GroundTruthOptimal(g, cfg)
	par := map[string]int{"src": opt["src"] * 2, "map": opt["map"] * 2, "agg": 1, "sink": opt["sink"] * 2}
	if err := e.Deploy(par); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ForFlavor(e.Graph(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := e.Graph().IndexOf("agg")
	if labels[ia] != Bottleneck {
		t.Fatalf("starved agg labeled %d, want 1; metrics:\n%s", labels[ia], m)
	}
	if got := Bottlenecks(labels); len(got) != 1 || got[0] != ia {
		t.Fatalf("Bottlenecks = %v, want [%d]", got, ia)
	}
}

func TestLabelTimely(t *testing.T) {
	g := diamond()
	m := &engine.JobMetrics{Flavor: engine.Timely}
	for i, op := range g.Operators() {
		m.Ops = append(m.Ops, engine.OpMetrics{ID: op.ID, Index: i, Bottleneck: op.ID == "o3"})
	}
	labels, err := LabelTimely(g, m)
	if err != nil {
		t.Fatal(err)
	}
	i3, _ := g.IndexOf("o3")
	for i, l := range labels {
		want := NonBottleneck
		if i == i3 {
			want = Bottleneck
		}
		if l != want {
			t.Errorf("label[%d] = %d, want %d", i, l, want)
		}
	}
	// ForFlavor dispatches on metrics flavor.
	viaDispatch, err := ForFlavor(g, m, engine.DefaultConfig(engine.Timely))
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if labels[i] != viaDispatch[i] {
			t.Fatal("ForFlavor(Timely) disagrees with LabelTimely")
		}
	}
}
