// Command streamtune is a small CLI around the StreamTune library:
//
//	streamtune inspect -query q5            # show a workload DAG
//	streamtune tune -query q5 -rate 10      # pre-train on Nexmark+PQP and tune
//	streamtune pretrain -samples 40         # corpus + pre-training stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/streamtune/streamtune"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "inspect":
		cmdInspect(os.Args[2:])
	case "tune":
		cmdTune(os.Args[2:])
	case "pretrain":
		cmdPretrain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: streamtune <inspect|tune|pretrain> [flags]")
	os.Exit(2)
}

func buildQuery(name string) *streamtune.Graph {
	g, err := streamtune.BuildNexmark(streamtune.NexmarkQuery(name), streamtune.Flink)
	if err != nil {
		log.Fatalf("unknown query %q (want q1, q2, q3, q5, q8): %v", name, err)
	}
	return g
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	query := fs.String("query", "q5", "nexmark query")
	asJSON := fs.Bool("json", false, "emit the DAG as JSON")
	fs.Parse(args)

	g := buildQuery(*query)
	if *asJSON {
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	fmt.Println(g)
}

func cmdTune(args []string) {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	query := fs.String("query", "q5", "nexmark query")
	rate := fs.Float64("rate", 10, "source rate multiplier (x Wu)")
	quick := fs.Bool("quick", true, "scaled-down pre-training")
	fs.Parse(args)

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	fmt.Println("pre-training on the Nexmark + PQP corpus...")
	pt, _, err := experiments.PreTrain(engine.Flink, opts)
	if err != nil {
		log.Fatal(err)
	}

	g := buildQuery(*query)
	g.ScaleSourceRates(*rate)
	eng, err := streamtune.NewEngine(g, streamtune.DefaultEngineConfig(streamtune.Flink))
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := streamtune.NewTuner(pt, eng.Graph())
	if err != nil {
		log.Fatal(err)
	}
	res, err := tuner.Tune(eng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned %s at %.0fxWu in %d reconfiguration(s):\n", g.Name, *rate, res.Reconfigurations)
	for _, op := range g.Operators() {
		fmt.Printf("  %-18s p=%d\n", op.ID, res.Parallelism[op.ID])
	}
	fmt.Printf("backpressure-free: %v\n", !res.Final.Backpressured)
}

func cmdPretrain(args []string) {
	fs := flag.NewFlagSet("pretrain", flag.ExitOnError)
	samples := fs.Int("samples", 15, "executions per job structure")
	epochs := fs.Int("epochs", 10, "training epochs")
	fs.Parse(args)

	opts := experiments.Quick()
	opts.CorpusSamples = *samples
	opts.TrainEpochs = *epochs
	corpus, err := experiments.BuildCorpus(engine.Flink, opts)
	if err != nil {
		log.Fatal(err)
	}
	labeled, bns := corpus.LabeledCount()
	fmt.Printf("corpus: %d executions, %d labeled operators (%d bottlenecks)\n",
		corpus.Len(), labeled, bns)
	pt, _, err := experiments.PreTrain(engine.Flink, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d, pre-training time: %v\n", len(pt.Encoders), pt.TrainTime.Round(1e6))
	for c, losses := range pt.Losses {
		fmt.Printf("  cluster %d: loss %.4f -> %.4f over %d epochs\n",
			c, losses[0], losses[len(losses)-1], len(losses))
	}
}
