// Command streamtune is a small CLI around the StreamTune library:
//
//	streamtune inspect -query q5            # show a workload DAG
//	streamtune tune -query q5 -rate 10      # pre-train on Nexmark+PQP and tune
//	streamtune pretrain -samples 40         # corpus + pre-training stats
//	streamtune serve -addr :8571            # multi-tenant tuning service
//
// Every subcommand exits 0 on success and 1 on failure. tune always
// writes a final JSON summary — including on tuning failure, where the
// summary carries the error and whatever partial results exist — so
// scripted callers never lose a run's outcome to a crash-and-exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/streamtune/streamtune"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/experiments"
	"github.com/streamtune/streamtune/internal/logbuffer"
	"github.com/streamtune/streamtune/internal/service"
	"github.com/streamtune/streamtune/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "pretrain":
		err = cmdPretrain(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamtune:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: streamtune <inspect|tune|pretrain|serve> [flags]")
	os.Exit(2)
}

func buildQuery(name string) (*streamtune.Graph, error) {
	g, err := streamtune.BuildNexmark(streamtune.NexmarkQuery(name), streamtune.Flink)
	if err != nil {
		return nil, fmt.Errorf("unknown query %q (want q1, q2, q3, q5, q8): %w", name, err)
	}
	return g, nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	query := fs.String("query", "q5", "nexmark query")
	asJSON := fs.Bool("json", false, "emit the DAG as JSON")
	fs.Parse(args)

	g, err := buildQuery(*query)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(data, '\n'))
		return nil
	}
	fmt.Println(g)
	return nil
}

// tuneSummary is the machine-readable outcome of one tune run. It is
// written even when tuning fails, carrying the error and any partial
// results gathered before the failure.
type tuneSummary struct {
	Query string  `json:"query"`
	Rate  float64 `json:"rate"`
	OK    bool    `json:"ok"`
	Error string  `json:"error,omitempty"`

	ClusterID        int            `json:"cluster_id,omitempty"`
	Iterations       int            `json:"iterations,omitempty"`
	Reconfigurations int            `json:"reconfigurations,omitempty"`
	Parallelism      map[string]int `json:"parallelism,omitempty"`
	TotalParallelism int            `json:"total_parallelism,omitempty"`
	BackpressureFree bool           `json:"backpressure_free"`
	RecommendSeconds float64        `json:"recommend_seconds,omitempty"`
	TuningSeconds    float64        `json:"tuning_seconds,omitempty"`
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	query := fs.String("query", "q5", "nexmark query")
	rate := fs.Float64("rate", 10, "source rate multiplier (x Wu)")
	quick := fs.Bool("quick", true, "scaled-down pre-training")
	out := fs.String("out", "", "also write the final JSON summary to this file")
	fs.Parse(args)

	summary := &tuneSummary{Query: *query, Rate: *rate}
	err := runTune(summary, *query, *rate, *quick)
	summary.OK = err == nil
	if err != nil {
		summary.Error = err.Error()
	}
	// Flush the summary on every path: success, partial tuning failure,
	// even pre-training failure — scripted callers always get a record.
	data, merr := json.MarshalIndent(summary, "", "  ")
	if merr != nil {
		if err != nil {
			return err
		}
		return merr
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *out != "" {
		if werr := os.WriteFile(*out, data, 0o644); werr != nil {
			if err == nil {
				err = werr
			} else {
				fmt.Fprintln(os.Stderr, "streamtune:", werr)
			}
		}
	}
	return err
}

// runTune performs the actual tuning, filling summary incrementally so
// partial results survive a mid-run failure.
func runTune(summary *tuneSummary, query string, rate float64, quick bool) error {
	opts := experiments.Full()
	if quick {
		opts = experiments.Quick()
	}
	fmt.Fprintln(os.Stderr, "pre-training on the Nexmark + PQP corpus...")
	pt, _, err := experiments.PreTrain(engine.Flink, opts)
	if err != nil {
		return fmt.Errorf("pre-train: %w", err)
	}

	g, err := buildQuery(query)
	if err != nil {
		return err
	}
	g.ScaleSourceRates(rate)
	eng, err := streamtune.NewEngine(g, streamtune.DefaultEngineConfig(streamtune.Flink))
	if err != nil {
		return err
	}
	tuner, err := streamtune.NewTuner(pt, eng.Graph())
	if err != nil {
		return err
	}
	summary.ClusterID = tuner.ClusterID()
	res, err := tuner.Tune(eng)
	if err != nil {
		return fmt.Errorf("tune %s at %.0fxWu: %w", g.Name, rate, err)
	}

	summary.Iterations = res.Iterations
	summary.Reconfigurations = res.Reconfigurations
	summary.Parallelism = res.Parallelism
	summary.TotalParallelism = res.TotalParallelism()
	summary.BackpressureFree = res.Final != nil && !res.Final.Backpressured
	summary.RecommendSeconds = res.RecommendTime.Seconds()
	summary.TuningSeconds = res.TuningTime.Seconds()

	fmt.Fprintf(os.Stderr, "tuned %s at %.0fxWu in %d reconfiguration(s)\n", g.Name, rate, res.Reconfigurations)
	return nil
}

func cmdPretrain(args []string) error {
	fs := flag.NewFlagSet("pretrain", flag.ExitOnError)
	samples := fs.Int("samples", 15, "executions per job structure")
	epochs := fs.Int("epochs", 10, "training epochs")
	artifactDir := fs.String("artifact-dir", "", "write the pre-training artifact store to this directory")
	fs.Parse(args)

	opts := experiments.Quick()
	opts.CorpusSamples = *samples
	opts.TrainEpochs = *epochs
	corpus, err := experiments.BuildCorpus(engine.Flink, opts)
	if err != nil {
		return err
	}
	labeled, bns := corpus.LabeledCount()
	fmt.Printf("corpus: %d executions, %d labeled operators (%d bottlenecks)\n",
		corpus.Len(), labeled, bns)
	pt, _, err := experiments.PreTrain(engine.Flink, opts)
	if err != nil {
		return err
	}
	fmt.Printf("clusters: %d, pre-training time: %v\n", len(pt.Encoders), pt.TrainTime.Round(1e6))
	for c, losses := range pt.Losses {
		fmt.Printf("  cluster %d: loss %.4f -> %.4f over %d epochs\n",
			c, losses[0], losses[len(losses)-1], len(losses))
	}
	if *artifactDir != "" {
		if err := streamtune.SaveArtifacts(*artifactDir, pt); err != nil {
			return err
		}
		fmt.Printf("wrote artifact store to %s\n", *artifactDir)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8571", "HTTP listen address")
	quick := fs.Bool("quick", true, "scaled-down pre-training")
	artifacts := fs.String("artifacts", "", "open this artifact store (streamtune pretrain -artifact-dir) instead of pre-training at startup")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs)")
	lease := fs.Duration("lease", 30*time.Minute, "session idle lease TTL (0 disables eviction)")
	maxSessions := fs.Int("max-sessions", 1024, "session registry cap (0 = unlimited)")
	evictEvery := fs.Duration("evict-every", time.Minute, "idle-eviction janitor period")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "cross-tenant inference batching deadline (0 disables batching)")
	maxBatch := fs.Int("max-batch", 8, "max sessions coalesced into one inference batch")
	observeBatchWindow := fs.Duration("observe-batch-window", 0, "Observe label-harvest coalescing window (0 disables)")
	maxObserveBatch := fs.Int("max-observe-batch", 16, "max observations harvested in one pooled task")
	admissionCacheCap := fs.Int("admission-cache-cap", 0, "admission distance-cache pair capacity; epoch reset on overflow (0 = unbounded)")
	snapshot := fs.String("snapshot", "", "snapshot path: restored at startup when present, written on shutdown")
	checkpointDir := fs.String("checkpoint-dir", "", "crash-safe checkpoint directory: restored from at startup, checkpointed to while serving")
	checkpointEvery := fs.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint cadence")
	checkpointMutations := fs.Uint64("checkpoint-mutations", 64, "checkpoint early after this many registry mutations (0 = time-only)")
	checkpointKeep := fs.Int("checkpoint-keep", 3, "checkpoint files retained for corruption fallback")
	maxQueue := fs.Int("max-queue", 0, "bounded admission queue per worker pool; overflow sheds with 503 (0 = unbounded)")
	maxPendingInfer := fs.Int("max-pending-infer", 0, "max requests parked in inference batch windows; overflow sheds with 503 (0 = unbounded)")
	requestTimeout := fs.Duration("request-timeout", 0, "server-side deadline for Register/Recommend/Observe (0 = none)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 503 overload responses")
	logLevel := fs.String("log-level", "info", "minimum log severity (debug, info, warn, error)")
	logBuffer := fs.Int("log-buffer", 1024, "structured-log ring capacity served at GET /v1/logs (0 disables the endpoint)")
	metricsAddr := fs.String("metrics-addr", "", "serve the ops surface (/metrics, /healthz, /readyz, /v1/logs, /v1/stats) on this extra listener")
	fs.Parse(args)

	// Structured logging: JSON lines to stderr for collectors, fanned
	// out into the in-memory ring served at GET /v1/logs.
	level, err := logbuffer.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	stderrHandler := slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	var ring *logbuffer.Buffer
	handler := slog.Handler(stderrHandler)
	if *logBuffer > 0 {
		ring = logbuffer.New(*logBuffer)
		handler = logbuffer.Fanout(stderrHandler, ring.Handler(level))
	}
	logger := slog.New(handler)

	var pt *streamtune.PreTrained
	if *artifacts != "" {
		// Lazy startup: parse the manifest only; corpus groups and
		// encoders stream in as tenants touch their clusters.
		pt, err = streamtune.OpenArtifacts(*artifacts)
		if err != nil {
			return fmt.Errorf("open artifacts: %w", err)
		}
		logger.Info("opened artifact store", "path", *artifacts, "clusters", len(pt.Encoders))
	} else {
		opts := experiments.Full()
		if *quick {
			opts = experiments.Quick()
		}
		opts.Parallelism = *workers
		logger.Info("pre-training shared artifact", "quick", *quick)
		pt, _, err = experiments.PreTrain(engine.Flink, opts)
		if err != nil {
			return fmt.Errorf("pre-train: %w", err)
		}
		logger.Info("pre-trained cluster encoders",
			"clusters", len(pt.Encoders), "train_time", pt.TrainTime.Round(time.Millisecond).String())
	}

	cfg := service.Config{
		LeaseTTL:           *lease,
		MaxSessions:        *maxSessions,
		Workers:            *workers,
		BatchWindow:        *batchWindow,
		MaxBatch:           *maxBatch,
		ObserveBatchWindow: *observeBatchWindow,
		MaxObserveBatch:    *maxObserveBatch,
		AdmissionCacheCap:  *admissionCacheCap,
		MaxQueue:           *maxQueue,
		MaxPendingInfer:    *maxPendingInfer,
		RequestTimeout:     *requestTimeout,
		RetryAfter:         *retryAfter,
		Metrics:            service.NewMetrics(telemetry.NewRegistry()),
		Logs:               ring,
		Logger:             logger,
	}
	// Durable state precedence: the checkpoint directory (crash-safe,
	// rotated, checksummed) wins over the single-file -snapshot, which
	// remains the graceful-shutdown handoff format.
	var svc *service.Service
	if *checkpointDir != "" {
		restored, path, skipped, rerr := service.RestoreFromDir(pt, cfg, *checkpointDir)
		for _, serr := range skipped {
			logger.Warn("checkpoint skipped", "err", serr.Error())
		}
		if rerr != nil {
			return fmt.Errorf("restore from %s: %w", *checkpointDir, rerr)
		}
		if restored != nil {
			svc = restored
			logger.Info("restored sessions from checkpoint", "sessions", len(svc.JobIDs()), "path", path)
		}
	}
	if svc == nil && *snapshot != "" {
		if data, rerr := os.ReadFile(*snapshot); rerr == nil {
			svc, err = service.Restore(pt, cfg, data)
			if err != nil {
				return fmt.Errorf("restore snapshot %s: %w", *snapshot, err)
			}
			logger.Info("restored sessions from snapshot", "sessions", len(svc.JobIDs()), "path", *snapshot)
		} else if !errors.Is(rerr, os.ErrNotExist) {
			return fmt.Errorf("read snapshot %s: %w", *snapshot, rerr)
		}
	}
	if svc == nil {
		svc, err = service.New(pt, cfg)
		if err != nil {
			return err
		}
	}

	var ckpt *service.Checkpointer
	if *checkpointDir != "" {
		ckpt, err = service.NewCheckpointer(svc, service.CheckpointConfig{
			Dir:            *checkpointDir,
			Interval:       *checkpointEvery,
			EveryMutations: *checkpointMutations,
			Keep:           *checkpointKeep,
		})
		if err != nil {
			return err
		}
		ckpt.Start()
		logger.Info("checkpointing enabled", "dir", *checkpointDir,
			"every", checkpointEvery.String(), "keep", *checkpointKeep)
	}

	// Optional ops listener: the scrape/probe surface on an internal
	// port, off the tenant-facing one.
	var opsSrv *http.Server
	if *metricsAddr != "" {
		opsSrv = &http.Server{
			Addr:              *metricsAddr,
			Handler:           svc.OpsHandler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			logger.Info("ops listener up", "addr", *metricsAddr)
			if err := opsSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener failed", "err", err.Error())
			}
		}()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Slow-client protection: a tenant that stalls mid-headers or
		// mid-body must not pin a connection forever. Writes get more
		// room than reads — the snapshot endpoint streams the full
		// session registry.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	stop := make(chan struct{})
	var janitor sync.WaitGroup
	if *lease > 0 && *evictEvery > 0 {
		janitor.Add(1)
		go func() {
			defer janitor.Done()
			tick := time.NewTicker(*evictEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if n := svc.EvictIdle(); n > 0 {
						logger.Info("idle sessions evicted", "count", n)
					}
				}
			}
		}()
	}

	shutdownDone := make(chan error, 1)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Info("shutting down")
		// Flip readiness first: load balancers watching /readyz stop
		// routing new traffic before the drain starts.
		svc.SetReady(false)
		// Ordering matters for snapshot integrity: stop and join the
		// janitor so no eviction races the snapshot, drain in-flight
		// HTTP requests, then close the service (completing any
		// batcher waiters through the single-graph fallback) before
		// serializing the registry.
		close(stop)
		janitor.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		svc.Close()
		if ckpt != nil {
			if serr := ckpt.Stop(); serr != nil {
				logger.Error("final checkpoint failed", "err", serr.Error())
			} else if path, _ := ckpt.LastCheckpoint(); path != "" {
				logger.Info("final checkpoint written", "path", path)
			}
		}
		if *snapshot != "" {
			// Atomic write: a crash mid-shutdown must never tear the
			// previous snapshot.
			if data, serr := svc.Snapshot(); serr != nil {
				logger.Error("snapshot failed", "err", serr.Error())
			} else if werr := service.WriteFileAtomic(*snapshot, data); werr != nil {
				logger.Error("snapshot write failed", "err", werr.Error())
			} else {
				logger.Info("snapshot written", "sessions", len(svc.JobIDs()), "path", *snapshot)
			}
		}
		// The ops listener goes down last so /readyz reports the drain
		// to the very end.
		if opsSrv != nil {
			octx, ocancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = opsSrv.Shutdown(octx)
			ocancel()
		}
		shutdownDone <- err
	}()

	logger.Info("tuning service listening", "addr", *addr,
		"lease", lease.String(), "workers", svc.Stats().Overload.WorkerCap,
		"log_level", level.String())
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownDone
}
