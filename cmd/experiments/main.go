// Command experiments regenerates the tables and figures of the
// StreamTune paper's evaluation (§V) on the simulated engines.
//
// Usage:
//
//	experiments -exp fig6            # one experiment
//	experiments -exp all             # everything
//	experiments -exp fig7a -quick    # CI-scale configuration
//
// Experiment IDs: table2, fig4, fig5, fig6, fig7a, fig7b, table3, fig8a,
// fig8bcd, fig9a, fig9b, fig10, fig11a, fig11b, ablation-noise,
// ablation-global, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/streamtune/streamtune/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see package doc)")
	quick := flag.Bool("quick", false, "use the scaled-down configuration")
	flag.Parse()

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}

	if err := run(*exp, opts); err != nil {
		log.Fatalf("experiment %s: %v", *exp, err)
	}
}

func run(exp string, opts experiments.Options) error {
	out := os.Stdout
	needSweep := map[string]bool{"fig6": true, "fig7a": true, "table3": true, "fig9a": true, "all": true}

	var sweep []*experiments.CycleStats
	if needSweep[exp] {
		var err error
		sweep, err = experiments.Sweep(opts)
		if err != nil {
			return err
		}
	}

	once := func(id string) error {
		switch id {
		case "table2":
			t, err := experiments.Table2()
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig4":
			points, ft, wt, err := experiments.Fig4(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Fig 4: Parallelism vs Processing Ability ==")
			fmt.Fprintln(out, "p   filter PA (rec/s)   window PA (rec/s)")
			for _, p := range points {
				fmt.Fprintf(out, "%-3d %-18.0f %-18.0f\n", p.Parallelism, p.FilterPA, p.WindowPA)
			}
			fmt.Fprintf(out, "bottleneck thresholds: filter=%d window=%d (paper: 14 and 10)\n", ft, wt)
		case "fig5":
			t, err := experiments.Fig5(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig6":
			experiments.Fig6(sweep).Render(out)
		case "fig7a":
			experiments.Fig7a(sweep).Render(out)
		case "table3":
			experiments.Table3(sweep).Render(out)
		case "fig9a":
			experiments.Fig9a(sweep).Render(out)
		case "fig7b":
			t, err := experiments.Fig7b(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig8a", "fig8bcd":
			results, err := experiments.Fig8(opts)
			if err != nil {
				return err
			}
			if id == "fig8a" {
				experiments.Fig8aTable(results).Render(out)
			} else {
				experiments.Fig8LatencyTable(results).Render(out)
			}
		case "fig9b":
			sizes := []int{200, 500, 1000, 2000}
			if opts.CorpusSamples < experiments.Full().CorpusSamples {
				sizes = []int{100, 200, 400, 800}
			}
			t, err := experiments.Fig9b(opts, sizes)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig10":
			t, err := experiments.Fig10(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig11a":
			t, err := experiments.Fig11a(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig11b":
			// Direct GED is quadratic in dataset size with no pruning —
			// that is the point of the figure — so quick mode caps the
			// sweep where the baseline stays tractable.
			sizes := []int{100, 200, 300, 400}
			if opts.CorpusSamples < experiments.Full().CorpusSamples {
				sizes = []int{20, 40, 60}
			}
			t, err := experiments.Fig11b(opts, sizes)
			if err != nil {
				return err
			}
			t.Render(out)
		case "ablation-noise":
			rows, err := experiments.AblationNoise(opts, []float64{0.01, 0.05, 0.1, 0.2})
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Ablation: useful-time noise sweep (Nexmark Q5) ==")
			fmt.Fprintln(out, "noise  DS2 reconfigs  DS2 bp  StreamTune reconfigs  StreamTune bp")
			for _, r := range rows {
				fmt.Fprintf(out, "%-6.2f %-14.2f %-7d %-21.2f %d\n",
					r.Noise, r.DS2Reconfigs, r.DS2Backpressure, r.StreamTuneRecfg, r.StreamTuneBackpres)
			}
		case "ablation-global":
			t, err := experiments.AblationGlobal(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	if exp != "all" {
		return once(exp)
	}
	for _, id := range []string{
		"table2", "fig4", "fig5", "fig6", "fig7a", "table3", "fig9a",
		"fig7b", "fig8a", "fig8bcd", "fig9b", "fig10", "fig11a", "fig11b",
		"ablation-noise", "ablation-global",
	} {
		if err := once(id); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
