// Command experiments regenerates the tables and figures of the
// StreamTune paper's evaluation (§V) on the simulated engines.
//
// Usage:
//
//	experiments -exp fig6            # one experiment
//	experiments -exp all             # everything
//	experiments -exp fig7a -quick    # CI-scale configuration
//	experiments -exp all -workers 8  # bound the worker pool
//
// Experiment IDs: table2, fig4, fig5, fig6, fig7a, fig7b, table3, fig8a,
// fig8bcd, fig9a, fig9b, fig10, fig11a, fig11b, ablation-noise,
// ablation-global, ged-bench, admission-bench, nn-bench, service-bench,
// chaos-bench, scenario-bench, all ("all" excludes the explicit
// benchmarks; run them explicitly).
//
// -workers bounds the fan-out of each parallel stage (concurrent
// drivers, experiment cells, corpus samples, GED pairs, per-cluster
// training). Stages nest, so the total number of live goroutines can
// exceed N — the Go scheduler still caps effective CPU parallelism at
// GOMAXPROCS. Every parallel path is deterministic, so the rendered
// tables are identical for any worker count. 0 (the default) uses
// every CPU; 1 reproduces the fully sequential run.
//
// Unless -bench-out is empty, a BENCH_experiments.json wall-clock
// summary (total and per-driver seconds, worker count) is written so
// speedups can be tracked across runs. The ged-bench experiment
// additionally writes the "ged" section of BENCH_ged.json: per-scale
// seed-vs-pipeline timings, filter/verify/cache pair counts and A*
// states expanded. The admission-bench experiment writes the
// "admission" section of the same file: corpus growth through the
// incremental cluster maintainer (pivot index + learned GED band over a
// bounded cache) timed against a global K-means re-run, with sampled
// assignments differentially verified against the canonical center
// scan, plus concurrent service Register throughput under a capped
// admission cache. The two sections are read-modify-written so either
// bench can be refreshed alone.
// The nn-bench experiment writes BENCH_nn.json: seed-vs-compiled-plan
// wall clock for GNN pre-training, ZeroTune cost-model training, and
// online-tuning inference, with bit-identical-result cross-checks.
// The service-bench experiment writes BENCH_service.json: N concurrent
// jobs tuned through the multi-tenant service (jobs/sec, recommend
// latency quantiles, shared-artifact hit rates), cross-checked
// bit-for-bit against sequential single-job Tuner runs, plus a small
// embedded crash-recovery soak (recovery_cross_checks must be nonzero).
// The chaos-bench experiment writes BENCH_chaos.json: the full
// crash-recovery soak — the service is killed at -chaos-kills random
// points mid-tuning, checkpoint writes fail and checkpoint files are
// corrupted on a seeded schedule, and every restart must resume from
// the newest valid checkpoint with recommendations bit-identical to an
// uninterrupted run.
// The scenario-bench experiment writes BENCH_scenarios.json: the
// adversarial-traffic suite — bursty, diurnal, and skewed-key rate
// traces driven through StreamTune and the DS2 / ContTune baselines,
// each with a seeded mid-stream DAG mutation, reporting per-cell
// reconfiguration and backpressure counts plus a differential check
// that the service's PATCH-topology warm start converges bit-identically
// to tuning the mutated job from scratch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/experiments"
	"github.com/streamtune/streamtune/internal/parallel"
)

// allDrivers is the fixed rendering order of -exp all.
var allDrivers = []string{
	"table2", "fig4", "fig5", "fig6", "fig7a", "table3", "fig9a",
	"fig7b", "fig8a", "fig8bcd", "fig9b", "fig10", "fig11a", "fig11b",
	"ablation-noise", "ablation-global",
}

// benchSummary is the wall-clock record written to -bench-out.
type benchSummary struct {
	Experiment    string             `json:"experiment"`
	Quick         bool               `json:"quick"`
	Workers       int                `json:"workers"`
	NumCPU        int                `json:"num_cpu"`
	TotalSeconds  float64            `json:"total_seconds"`
	DriverSeconds map[string]float64 `json:"driver_seconds"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see package doc)")
	quick := flag.Bool("quick", false, "use the scaled-down configuration")
	workers := flag.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = sequential)")
	benchOut := flag.String("bench-out", "BENCH_experiments.json", "wall-clock summary path (empty to disable)")
	gedBenchOut := flag.String("ged-bench-out", "BENCH_ged.json", "ged-bench report path (empty to disable)")
	nnBenchOut := flag.String("nn-bench-out", "BENCH_nn.json", "nn-bench report path (empty to disable)")
	serviceBenchOut := flag.String("service-bench-out", "BENCH_service.json", "service-bench report path (empty to disable)")
	serviceJobs := flag.Int("service-jobs", 0, "service-bench concurrent jobs (0 = 16)")
	chaosBenchOut := flag.String("chaos-bench-out", "BENCH_chaos.json", "chaos-bench report path (empty to disable)")
	chaosJobs := flag.Int("chaos-jobs", 4, "chaos-bench tenant count")
	chaosKills := flag.Int("chaos-kills", 24, "chaos-bench injected service kills")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos-bench fault-schedule seed")
	admissionRegisters := flag.Int("admission-registers", 16, "admission-bench concurrent service Register calls")
	scenarioBenchOut := flag.String("scenario-bench-out", "BENCH_scenarios.json", "scenario-bench report path (empty to disable)")
	scenarioSteps := flag.Int("scenario-steps", 0, "scenario-bench trace length (0 = 48)")
	flag.Parse()

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Parallelism = *workers

	summary := &benchSummary{
		Experiment:    *exp,
		Quick:         *quick,
		Workers:       parallel.Workers(*workers),
		NumCPU:        runtime.NumCPU(),
		DriverSeconds: make(map[string]float64),
	}
	// 16 jobs over the 8 Flink workloads puts two structural clones on
	// every fingerprint, so the batched pass exercises real coalescing
	// (occupancy > 1) even in the -quick CI smoke run.
	jobs := *serviceJobs
	if jobs <= 0 {
		jobs = 16
	}

	bench := benchTargets{
		gedOut:      *gedBenchOut,
		nnOut:       *nnBenchOut,
		serviceOut:  *serviceBenchOut,
		chaosOut:    *chaosBenchOut,
		serviceJobs: jobs,
		chaosJobs:   *chaosJobs,
		chaosKills:  *chaosKills,
		chaosSeed:   *chaosSeed,

		admissionRegisters: *admissionRegisters,
		scenarioOut:        *scenarioBenchOut,
		scenarioSteps:      *scenarioSteps,
	}

	start := time.Now()
	if err := run(*exp, opts, summary, bench); err != nil {
		log.Fatalf("experiment %s: %v", *exp, err)
	}
	summary.TotalSeconds = time.Since(start).Seconds()

	if *benchOut != "" {
		if err := writeBench(*benchOut, summary); err != nil {
			log.Fatalf("bench summary: %v", err)
		}
	}
}

func writeBench(path string, s *benchSummary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchTargets carries the report destinations and scales of the
// explicit benchmark experiments.
type benchTargets struct {
	gedOut, nnOut, serviceOut, chaosOut string
	serviceJobs, chaosJobs, chaosKills  int
	chaosSeed                           int64
	admissionRegisters                  int
	scenarioOut                         string
	scenarioSteps                       int
}

// updateGEDReport read-modify-writes the combined BENCH_ged.json so
// ged-bench and admission-bench each refresh their own section without
// clobbering the other's. A legacy bare-array file is read as the GED
// section. An empty path disables the write.
func updateGEDReport(path string, mutate func(*experiments.GEDReport)) error {
	if path == "" {
		return nil
	}
	var report experiments.GEDReport
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		trimmed := bytes.TrimSpace(data)
		if len(trimmed) > 0 && trimmed[0] == '[' {
			if err := json.Unmarshal(trimmed, &report.GED); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		} else if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	case os.IsNotExist(err):
	default:
		return err
	}
	mutate(&report)
	return writeReport(path, &report)
}

// writeReport marshals a benchmark report to path; an empty path
// disables the write.
func writeReport(path string, report any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run(exp string, opts experiments.Options, summary *benchSummary, bench benchTargets) error {
	out := os.Stdout
	needSweep := map[string]bool{"fig6": true, "fig7a": true, "table3": true, "fig9a": true, "all": true}

	var sweep []*experiments.CycleStats
	if needSweep[exp] {
		sweepStart := time.Now()
		var err error
		sweep, err = experiments.Sweep(opts)
		if err != nil {
			return err
		}
		summary.DriverSeconds["sweep"] = time.Since(sweepStart).Seconds()
	}

	once := func(id string, out io.Writer) error {
		switch id {
		case "table2":
			t, err := experiments.Table2()
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig4":
			points, ft, wt, err := experiments.Fig4(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Fig 4: Parallelism vs Processing Ability ==")
			fmt.Fprintln(out, "p   filter PA (rec/s)   window PA (rec/s)")
			for _, p := range points {
				fmt.Fprintf(out, "%-3d %-18.0f %-18.0f\n", p.Parallelism, p.FilterPA, p.WindowPA)
			}
			fmt.Fprintf(out, "bottleneck thresholds: filter=%d window=%d (paper: 14 and 10)\n", ft, wt)
		case "fig5":
			t, err := experiments.Fig5(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig6":
			experiments.Fig6(sweep).Render(out)
		case "fig7a":
			experiments.Fig7a(sweep).Render(out)
		case "table3":
			experiments.Table3(sweep).Render(out)
		case "fig9a":
			experiments.Fig9a(sweep).Render(out)
		case "fig7b":
			t, err := experiments.Fig7b(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig8a", "fig8bcd":
			results, err := experiments.Fig8(opts)
			if err != nil {
				return err
			}
			if id == "fig8a" {
				experiments.Fig8aTable(results).Render(out)
			} else {
				experiments.Fig8LatencyTable(results).Render(out)
			}
		case "fig9b":
			sizes := []int{200, 500, 1000, 2000}
			if opts.CorpusSamples < experiments.Full().CorpusSamples {
				sizes = []int{100, 200, 400, 800}
			}
			t, err := experiments.Fig9b(opts, sizes)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig10":
			t, err := experiments.Fig10(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig11a":
			t, err := experiments.Fig11a(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "fig11b":
			// Direct GED is quadratic in dataset size with no pruning —
			// that is the point of the figure — so quick mode caps the
			// sweep where the baseline stays tractable.
			sizes := []int{100, 200, 300, 400}
			if opts.CorpusSamples < experiments.Full().CorpusSamples {
				sizes = []int{20, 40, 60}
			}
			t, err := experiments.Fig11b(opts, sizes)
			if err != nil {
				return err
			}
			t.Render(out)
		case "ablation-noise":
			rows, err := experiments.AblationNoise(opts, []float64{0.01, 0.05, 0.1, 0.2})
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Ablation: useful-time noise sweep (Nexmark Q5) ==")
			fmt.Fprintln(out, "noise  DS2 reconfigs  DS2 bp  StreamTune reconfigs  StreamTune bp")
			for _, r := range rows {
				fmt.Fprintf(out, "%-6.2f %-14.2f %-7d %-21.2f %d\n",
					r.Noise, r.DS2Reconfigs, r.DS2Backpressure, r.StreamTuneRecfg, r.StreamTuneBackpres)
			}
		case "ablation-global":
			t, err := experiments.AblationGlobal(opts)
			if err != nil {
				return err
			}
			t.Render(out)
		case "nn-bench":
			report, err := experiments.NNBench(opts)
			if err != nil {
				return err
			}
			experiments.NNBenchTable(report).Render(out)
			if err := writeReport(bench.nnOut, report); err != nil {
				return err
			}
		case "service-bench":
			report, err := experiments.ServiceBench(opts, bench.serviceJobs)
			if err != nil {
				return err
			}
			experiments.ServiceBenchTable(report).Render(out)
			if err := writeReport(bench.serviceOut, report); err != nil {
				return err
			}
		case "chaos-bench":
			report, err := experiments.ChaosBench(opts, bench.chaosJobs, bench.chaosKills, bench.chaosSeed)
			if err != nil {
				return err
			}
			experiments.ChaosBenchTable(report).Render(out)
			if err := writeReport(bench.chaosOut, report); err != nil {
				return err
			}
		case "scenario-bench":
			report, err := experiments.ScenarioBench(opts, bench.scenarioSteps)
			if err != nil {
				return err
			}
			experiments.ScenarioBenchTable(report).Render(out)
			if err := writeReport(bench.scenarioOut, report); err != nil {
				return err
			}
		case "ged-bench":
			sizes := []int{80, 160, 320}
			if opts.CorpusSamples < experiments.Full().CorpusSamples {
				sizes = []int{24, 48}
			}
			rows, err := experiments.GEDBench(opts, sizes)
			if err != nil {
				return err
			}
			experiments.GEDBenchTable(rows).Render(out)
			if err := updateGEDReport(bench.gedOut, func(r *experiments.GEDReport) {
				r.GED = rows
			}); err != nil {
				return err
			}
		case "admission-bench":
			sizes := []int{1000, 10000}
			if opts.CorpusSamples < experiments.Full().CorpusSamples {
				sizes = []int{160, 320}
			}
			report, err := experiments.AdmissionBench(opts, sizes, bench.admissionRegisters)
			if err != nil {
				return err
			}
			experiments.AdmissionBenchTable(report).Render(out)
			if err := updateGEDReport(bench.gedOut, func(r *experiments.GEDReport) {
				r.Admission = report
			}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	timed := func(id string, out io.Writer) error {
		driverStart := time.Now()
		err := once(id, out)
		summary.DriverSeconds[id] = time.Since(driverStart).Seconds()
		return err
	}

	if exp != "all" {
		return timed(exp, out)
	}

	// Run every driver concurrently, each rendering into its own buffer.
	// Buffers are flushed incrementally in the fixed allDrivers order as
	// their drivers complete, so stdout streams like a sequential run
	// and is byte-identical to one; if a driver fails, everything before
	// it has already been printed (a failed driver's partial buffer is
	// never flushed). The memoizing artifact cache deduplicates the
	// shared corpora and pre-training work across drivers, and each
	// driver additionally fans its own cells out.
	bufs := make([]bytes.Buffer, len(allDrivers))
	times := make([]float64, len(allDrivers))
	var mu sync.Mutex
	done := make([]bool, len(allDrivers))
	flushed := 0
	var flushErr error
	flushPrefix := func() { // caller holds mu
		for flushed < len(allDrivers) && done[flushed] {
			if _, err := bufs[flushed].WriteTo(out); err != nil && flushErr == nil {
				flushErr = err
			}
			fmt.Fprintln(out)
			flushed++
		}
	}
	err := parallel.ForEach(len(allDrivers), opts.Parallelism, func(i int) error {
		driverStart := time.Now()
		err := once(allDrivers[i], &bufs[i])
		times[i] = time.Since(driverStart).Seconds()
		mu.Lock()
		if err == nil {
			done[i] = true
		}
		flushPrefix()
		mu.Unlock()
		return err
	})
	for i, id := range allDrivers {
		summary.DriverSeconds[id] = times[i]
	}
	if err != nil {
		return err
	}
	if flushErr != nil {
		return flushErr
	}
	return nil
}
