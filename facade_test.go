package streamtune_test

import (
	"testing"

	"github.com/streamtune/streamtune"
)

// TestPublicAPIEndToEnd exercises the facade the way examples do: build
// a job, generate history, pre-train, tune, and check the outcome.
func TestPublicAPIEndToEnd(t *testing.T) {
	job := streamtune.NewGraph("api-e2e")
	job.MustAddOperator(&streamtune.Operator{
		ID: "src", Type: streamtune.Source, SourceRate: 8e5, TupleWidthOut: 64,
	})
	job.MustAddOperator(&streamtune.Operator{
		ID: "agg", Type: streamtune.Aggregate, Selectivity: 0.2, TupleWidthIn: 64, TupleWidthOut: 32,
	})
	job.MustAddOperator(&streamtune.Operator{ID: "sink", Type: streamtune.Sink, TupleWidthIn: 32})
	job.MustAddEdge("src", "agg")
	job.MustAddEdge("agg", "sink")

	hopts := streamtune.DefaultHistoryOptions(streamtune.Flink)
	hopts.SamplesPerGraph = 30
	hopts.Engine.MeasureTicks = 40
	corpus, err := streamtune.GenerateHistory([]*streamtune.Graph{job}, hopts)
	if err != nil {
		t.Fatal(err)
	}

	cfg := streamtune.DefaultConfig()
	cfg.Train.Epochs = 8
	pt, err := streamtune.PreTrain(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := streamtune.NewEngine(job, streamtune.DefaultEngineConfig(streamtune.Flink))
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := streamtune.NewTuner(pt, eng.Graph())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || res.Final.Backpressured {
		t.Fatal("tuned deployment still backpressured")
	}
	if res.TotalParallelism() < 3 {
		t.Fatalf("total parallelism %d below operator count", res.TotalParallelism())
	}

	// Baselines are reachable through the facade too.
	eng2, err := streamtune.NewEngine(job, streamtune.DefaultEngineConfig(streamtune.Flink))
	if err != nil {
		t.Fatal(err)
	}
	initial := map[string]int{"src": 1, "agg": 1, "sink": 1}
	if err := eng2.Deploy(initial); err != nil {
		t.Fatal(err)
	}
	dres, err := streamtune.TuneDS2(eng2)
	if err != nil {
		t.Fatal(err)
	}
	if dres.TotalParallelism() < 3 {
		t.Fatalf("DS2 total = %d", dres.TotalParallelism())
	}

	// Algorithm 1 labeling via the facade.
	m, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	labels, err := streamtune.LabelBottlenecks(eng2.Graph(), m, eng2.Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 {
		t.Fatalf("labels = %d, want 3", len(labels))
	}
}

// TestWorkloadBuilders checks the re-exported workload constructors.
func TestWorkloadBuilders(t *testing.T) {
	g, err := streamtune.BuildNexmark(streamtune.NexmarkQ3, streamtune.Timely)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOperators() != 7 {
		t.Fatalf("Q3 has %d ops, want 7", g.NumOperators())
	}
	p, err := streamtune.BuildPQP(streamtune.PQPThreeWayJoin, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sources()) != 3 {
		t.Fatalf("3-way join has %d sources", len(p.Sources()))
	}
	pats := streamtune.PeriodicRatePatterns(1)
	if len(pats) != 6 || pats[0].Len() != 20 {
		t.Fatalf("patterns = %dx%d, want 6x20", len(pats), pats[0].Len())
	}
}
