// Package streamtune is the public API of the StreamTune reproduction:
// adaptive parallelism tuning for stream processing systems via
// pre-trained GNN encoders over dataflow DAGs and an online fine-tuning
// loop with a monotonic bottleneck-prediction model (ICDE 2025,
// arXiv:2504.12074).
//
// The package re-exports the pieces a downstream user needs:
//
//   - Building logical dataflow DAGs (Graph, Operator, operator types).
//   - The simulated execution substrates (Engine, Flink/Timely flavors).
//   - The Nexmark and PQP evaluation workloads.
//   - Historical-corpus generation, pre-training, and online tuning.
//   - The DS2, ContTune and ZeroTune baselines.
//
// See examples/quickstart for a minimal end-to-end walkthrough.
package streamtune

import (
	"github.com/streamtune/streamtune/internal/baselines/conttune"
	"github.com/streamtune/streamtune/internal/baselines/ds2"
	"github.com/streamtune/streamtune/internal/baselines/zerotune"
	"github.com/streamtune/streamtune/internal/bottleneck"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
	"github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/workload"
)

// Dataflow DAG model.
type (
	// Graph is a logical dataflow DAG.
	Graph = dag.Graph
	// Operator is a dataflow operator with the static features of the
	// paper's Table I.
	Operator = dag.Operator
	// OpType identifies an operator's computational role.
	OpType = dag.OpType
)

// NewGraph returns an empty named dataflow graph.
func NewGraph(name string) *Graph { return dag.New(name) }

// Operator types.
const (
	Source     = dag.Source
	Sink       = dag.Sink
	Map        = dag.Map
	Filter     = dag.Filter
	FlatMap    = dag.FlatMap
	Join       = dag.Join
	Aggregate  = dag.Aggregate
	WindowOp   = dag.WindowOp
	WindowJoin = dag.WindowJoin
)

// Execution substrate.
type (
	// Engine is the simulated DSPS (Flink or Timely flavor).
	Engine = engine.Engine
	// EngineConfig parameterizes an Engine.
	EngineConfig = engine.Config
	// Flavor selects Flink or Timely semantics.
	Flavor = engine.Flavor
	// JobMetrics is one measurement window.
	JobMetrics = engine.JobMetrics
	// OpMetrics is one operator's runtime metrics.
	OpMetrics = engine.OpMetrics
)

// Engine flavors.
const (
	Flink  = engine.Flink
	Timely = engine.Timely
)

// NewEngine creates a simulated engine for a job graph.
func NewEngine(g *Graph, cfg EngineConfig) (*Engine, error) { return engine.New(g, cfg) }

// DefaultEngineConfig returns the evaluation defaults for a flavor.
func DefaultEngineConfig(f Flavor) EngineConfig { return engine.DefaultConfig(f) }

// Histories and pre-training.
type (
	// Corpus is a set of labeled historical executions.
	Corpus = history.Corpus
	// Execution is one historical run.
	Execution = history.Execution
	// HistoryOptions configures corpus generation.
	HistoryOptions = history.Options
	// Config parameterizes StreamTune pre-training and online tuning.
	Config = streamtune.Config
	// PreTrained is the offline pre-training artifact.
	PreTrained = streamtune.PreTrained
	// Tuner is the online fine-tuning loop (Algorithm 2).
	Tuner = streamtune.Tuner
	// TuneResult summarizes one tuning process.
	TuneResult = streamtune.Result
	// System is the engine surface the tuner drives.
	System = streamtune.System
	// GNNConfig parameterizes the dataflow encoder.
	GNNConfig = gnn.Config
)

// DefaultHistoryOptions returns corpus-generation defaults for a flavor.
func DefaultHistoryOptions(f Flavor) HistoryOptions { return history.DefaultOptions(f) }

// GenerateHistory executes randomized runs of the graphs and labels them
// with Algorithm 1, producing a pre-training corpus.
func GenerateHistory(graphs []*Graph, opts HistoryOptions) (*Corpus, error) {
	return history.Generate(graphs, opts)
}

// DefaultConfig returns the paper's StreamTune configuration.
func DefaultConfig() Config { return streamtune.DefaultConfig() }

// PreTrain clusters the corpus by Graph Edit Distance and trains one GNN
// encoder per cluster on operator-level bottleneck prediction.
func PreTrain(corpus *Corpus, cfg Config) (*PreTrained, error) {
	return streamtune.PreTrain(corpus, cfg)
}

// NewTuner assigns a target job to its nearest cluster and prepares the
// online fine-tuning state.
func NewTuner(pt *PreTrained, g *Graph) (*Tuner, error) { return streamtune.NewTuner(pt, g) }

// SaveArtifacts writes the pre-training outcome as an indexed artifact
// directory: a manifest, a cluster-grouped execution log, and one weight
// file per cluster encoder.
func SaveArtifacts(dir string, pt *PreTrained) error { return streamtune.SaveArtifacts(dir, pt) }

// OpenArtifacts opens a SaveArtifacts directory. Only the manifest and
// encoder weight bytes load eagerly; per-cluster executions and encoder
// construction happen on first use.
func OpenArtifacts(dir string) (*PreTrained, error) { return streamtune.OpenArtifacts(dir) }

// Bottleneck labeling (Algorithm 1).
const (
	// Unlabeled marks operators whose adequacy is inconclusive.
	Unlabeled = bottleneck.Unlabeled
	// NonBottleneck marks operators that keep up with their input.
	NonBottleneck = bottleneck.NonBottleneck
	// Bottleneck marks operators whose processing ability is
	// insufficient.
	Bottleneck = bottleneck.Bottleneck
)

// LabelBottlenecks runs Algorithm 1 on a measurement window.
func LabelBottlenecks(g *Graph, m *JobMetrics, cfg EngineConfig) ([]int, error) {
	return bottleneck.ForFlavor(g, m, cfg)
}

// Workloads.
type (
	// NexmarkQuery identifies a Nexmark benchmark query.
	NexmarkQuery = nexmark.Query
	// PQPTemplate identifies a PQP synthetic query template.
	PQPTemplate = pqp.Template
	// RatePattern is a periodic source-rate schedule.
	RatePattern = workload.Pattern
)

// Nexmark queries evaluated in the paper.
const (
	NexmarkQ1 = nexmark.Q1
	NexmarkQ2 = nexmark.Q2
	NexmarkQ3 = nexmark.Q3
	NexmarkQ5 = nexmark.Q5
	NexmarkQ8 = nexmark.Q8
)

// PQP templates.
const (
	PQPLinear       = pqp.Linear
	PQPTwoWayJoin   = pqp.TwoWayJoin
	PQPThreeWayJoin = pqp.ThreeWayJoin
)

// BuildNexmark constructs a Nexmark query DAG with Table II rate units.
func BuildNexmark(q NexmarkQuery, f Flavor) (*Graph, error) { return nexmark.Build(q, f) }

// BuildPQP constructs one deterministic PQP query variant.
func BuildPQP(t PQPTemplate, variant int) (*Graph, error) { return pqp.Build(t, variant) }

// PeriodicRatePatterns returns the paper's periodic source-rate schedule
// (6 permutations x 20 changes).
func PeriodicRatePatterns(seed int64) []RatePattern { return workload.PeriodicPatterns(seed) }

// Baselines.
type (
	// DS2Result is the outcome of one DS2 tuning process.
	DS2Result = ds2.Result
	// ContTuneTuner is the ContTune Bayesian-optimization tuner.
	ContTuneTuner = conttune.Tuner
	// ContTuneResult is the outcome of one ContTune tuning process.
	ContTuneResult = conttune.Result
	// ZeroTuneModel is the zero-shot job-level cost model.
	ZeroTuneModel = zerotune.Model
)

// TuneDS2 runs the DS2 controller against a deployed engine.
func TuneDS2(e *Engine) (*DS2Result, error) { return ds2.Tune(e, ds2.DefaultOptions()) }

// NewContTune creates a ContTune tuner with the paper's alpha = 3.
func NewContTune() *ContTuneTuner { return conttune.NewTuner(conttune.DefaultOptions()) }

// TrainZeroTune fits the ZeroTune cost model on a corpus.
func TrainZeroTune(corpus *Corpus, gcfg GNNConfig) (*ZeroTuneModel, error) {
	return zerotune.Train(corpus, gcfg, zerotune.DefaultTrainOptions())
}
