# Build the streamtune tuning service into a minimal static image.
#
#   docker build -t streamtune .
#   docker run -p 8571:8571 -p 9571:9571 streamtune
#
# The module has no external dependencies (no go.sum), so the build
# needs nothing beyond the Go toolchain and the source tree.
FROM golang:1.22 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
# CGO off for a fully static binary that runs on scratch; trimpath
# keeps build paths out of panics and the binary reproducible.
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/streamtune ./cmd/streamtune

FROM scratch
COPY --from=build /out/streamtune /streamtune
# 8571: tenant API (register/recommend/observe/mutate).
# 9571: ops surface (/metrics, /healthz, /readyz, /v1/logs, /v1/stats).
EXPOSE 8571 9571
# /data holds checkpoints; mount a volume there for durable recovery.
VOLUME ["/data"]
ENTRYPOINT ["/streamtune"]
CMD ["serve", "-addr", ":8571", "-metrics-addr", ":9571", "-checkpoint-dir", "/data/checkpoints"]
