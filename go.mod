module github.com/streamtune/streamtune

go 1.22
