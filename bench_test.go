// Benchmarks regenerating every table and figure of the paper's
// evaluation at CI scale (experiments.Quick). Each benchmark wraps the
// corresponding driver in internal/experiments; run the cmd/experiments
// binary with the default (full) options for paper-scale output.
package streamtune_test

import (
	"testing"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/experiments"
)

// quick returns bench-scale options: even smaller than experiments.Quick
// so the whole figure suite fits in one `go test -bench=.` run. Use
// cmd/experiments for paper-scale output.
func quick() experiments.Options {
	o := experiments.Quick()
	o.CorpusSamples = 8
	o.TrainEpochs = 4
	o.MeasureTicks = 40
	return o
}

// BenchmarkTable2 regenerates the source-rate unit table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 sweeps parallelism against measured processing ability.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.Fig4(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 computes the pre-training corpus distribution.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep shares one Flink cycle sweep across the figure benches that
// pivot it (Fig 6, Fig 7a, Table III, Fig 9a).
var sweepCache []*experiments.CycleStats

func sweep(b *testing.B) []*experiments.CycleStats {
	b.Helper()
	if sweepCache == nil {
		var err error
		sweepCache, err = experiments.Sweep(quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	return sweepCache
}

// BenchmarkFig6 reproduces final parallelism per method at 10xWu.
func BenchmarkFig6(b *testing.B) {
	s := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig6(s)
	}
}

// BenchmarkFig7a reproduces average reconfigurations per tuning.
func BenchmarkFig7a(b *testing.B) {
	s := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig7a(s)
	}
}

// BenchmarkTable3 reproduces backpressure occurrence counts.
func BenchmarkTable3(b *testing.B) {
	s := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table3(s)
	}
}

// BenchmarkFig9a reproduces recommendation-time comparisons.
func BenchmarkFig9a(b *testing.B) {
	s := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig9a(s)
	}
}

// BenchmarkFig7b runs the unseen 2-way-join case study.
func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7b(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 runs the Timely generality evaluation (Fig 8a-d).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9b measures pre-training cost scaling.
func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9b(quick(), []int{100, 300}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 traces CPU utilization across reconfigurations.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11a runs the prediction-model ablation (NN/SVM/XGB).
func BenchmarkFig11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11b compares direct GED with AStar+-LSa for
// similarity-center computation.
func BenchmarkFig11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11b(quick(), []int{20, 40}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoise sweeps useful-time measurement noise.
func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationNoise(quick(), []float64{0.02, 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGlobal compares clustered vs global pre-training.
func BenchmarkAblationGlobal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGlobal(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTick measures raw simulator throughput.
func BenchmarkEngineTick(b *testing.B) {
	ws, err := experiments.FlinkWorkloads(quick())
	if err != nil {
		b.Fatal(err)
	}
	g := ws[2].Graph.Clone() // Q3: two sources, join
	cfg := engine.DefaultConfig(engine.Flink)
	eng, err := engine.New(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	par := map[string]int{}
	for _, op := range g.Operators() {
		par[op.ID] = 4
	}
	if err := eng.Deploy(par); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
