// Command pqp pre-trains on the PQP synthetic query corpus and tunes an
// unseen 2-way-join query that was held out of pre-training — the
// paper's generalization case study (Fig. 7b).
package main

import (
	"fmt"
	"log"

	"github.com/streamtune/streamtune"
)

func main() {
	const holdout = 5

	// Build the PQP corpus population, skipping the holdout variant.
	var graphs []*streamtune.Graph
	for _, tmpl := range []streamtune.PQPTemplate{
		streamtune.PQPLinear, streamtune.PQPTwoWayJoin, streamtune.PQPThreeWayJoin,
	} {
		variants := map[streamtune.PQPTemplate]int{
			streamtune.PQPLinear: 8, streamtune.PQPTwoWayJoin: 16, streamtune.PQPThreeWayJoin: 32,
		}[tmpl]
		for i := 0; i < variants; i++ {
			if tmpl == streamtune.PQPTwoWayJoin && i == holdout {
				continue
			}
			g, err := streamtune.BuildPQP(tmpl, i)
			if err != nil {
				log.Fatal(err)
			}
			graphs = append(graphs, g)
		}
	}
	hopts := streamtune.DefaultHistoryOptions(streamtune.Flink)
	hopts.SamplesPerGraph = 15
	corpus, err := streamtune.GenerateHistory(graphs, hopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d executions over %d query structures\n", corpus.Len(), len(graphs))

	cfg := streamtune.DefaultConfig()
	cfg.Train.Epochs = 12
	pt, err := streamtune.PreTrain(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-trained %d cluster encoders in %v\n", len(pt.Encoders), pt.TrainTime.Round(1e6))

	// Tune the unseen query across the basic rate cycle.
	unseen, err := streamtune.BuildPQP(streamtune.PQPTwoWayJoin, holdout)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := streamtune.NewEngine(unseen, streamtune.DefaultEngineConfig(streamtune.Flink))
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := streamtune.NewTuner(pt, eng.Graph())
	if err != nil {
		log.Fatal(err)
	}

	base := map[string]float64{}
	for _, i := range unseen.Sources() {
		base[unseen.OperatorAt(i).ID] = unseen.OperatorAt(i).SourceRate
	}
	fmt.Printf("\ntuning unseen %s across the basic rate cycle:\n", unseen.Name)
	for _, mult := range []int{3, 7, 4, 2, 1, 10, 8, 5, 6, 9} {
		for id, wu := range base {
			if err := eng.SetSourceRate(id, wu*float64(mult)); err != nil {
				log.Fatal(err)
			}
		}
		res, err := tuner.Tune(eng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rate %2dxWu: parallelism %3d, tuning time %5.1f min (simulated), backpressure-free=%v\n",
			mult, res.TotalParallelism(), res.TuningTime.Minutes(), !res.Final.Backpressured)
	}
}
