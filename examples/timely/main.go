// Command timely demonstrates StreamTune's generality on the Timely
// Dataflow flavor (no built-in backpressure; rate-based bottleneck
// detection) and reports per-epoch latency quantiles under the
// recommended parallelism — the paper's §V-F evaluation.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/streamtune/streamtune"
)

func main() {
	queries := []streamtune.NexmarkQuery{
		streamtune.NexmarkQ3, streamtune.NexmarkQ5, streamtune.NexmarkQ8,
	}

	var graphs []*streamtune.Graph
	for _, q := range queries {
		g, err := streamtune.BuildNexmark(q, streamtune.Timely)
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	hopts := streamtune.DefaultHistoryOptions(streamtune.Timely)
	hopts.SamplesPerGraph = 40
	corpus, err := streamtune.GenerateHistory(graphs, hopts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := streamtune.DefaultConfig()
	cfg.Train.Epochs = 15
	cfg.GNN.PMax = streamtune.DefaultEngineConfig(streamtune.Timely).MaxParallelism
	pt, err := streamtune.PreTrain(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, g := range graphs {
		g := g.Clone()
		g.ScaleSourceRates(10) // the paper reports the 10xWu point

		eng, err := streamtune.NewEngine(g, streamtune.DefaultEngineConfig(streamtune.Timely))
		if err != nil {
			log.Fatal(err)
		}
		tuner, err := streamtune.NewTuner(pt, eng.Graph())
		if err != nil {
			log.Fatal(err)
		}
		res, err := tuner.Tune(eng)
		if err != nil {
			log.Fatal(err)
		}

		lats := append([]float64(nil), res.Final.EpochLatencies...)
		sort.Float64s(lats)
		q := func(p float64) float64 {
			if len(lats) == 0 {
				return 0
			}
			return lats[int(p*float64(len(lats)-1))]
		}
		fmt.Printf("%s: total parallelism %d after %d reconfigs\n",
			g.Name, res.TotalParallelism(), res.Reconfigurations)
		fmt.Printf("  per-epoch latency p50=%.2fs p90=%.2fs p99=%.2fs (%d epochs)\n",
			q(0.5), q(0.9), q(0.99), len(lats))
	}
}
