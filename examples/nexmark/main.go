// Command nexmark autoscales a Nexmark query through the paper's
// periodic source-rate pattern, comparing StreamTune against DS2 and
// ContTune on the Flink-flavor engine.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/streamtune/streamtune"
)

func main() {
	query := flag.String("query", "q5", "nexmark query (q1, q2, q3, q5, q8)")
	rateSteps := flag.Int("steps", 10, "number of rate changes to replay")
	flag.Parse()

	q := streamtune.NexmarkQuery(*query)
	g, err := streamtune.BuildNexmark(q, streamtune.Flink)
	if err != nil {
		log.Fatal(err)
	}

	// Pre-train on histories of all five Nexmark queries.
	var graphs []*streamtune.Graph
	for _, nq := range []streamtune.NexmarkQuery{
		streamtune.NexmarkQ1, streamtune.NexmarkQ2, streamtune.NexmarkQ3,
		streamtune.NexmarkQ5, streamtune.NexmarkQ8,
	} {
		ng, err := streamtune.BuildNexmark(nq, streamtune.Flink)
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, ng)
	}
	hopts := streamtune.DefaultHistoryOptions(streamtune.Flink)
	hopts.SamplesPerGraph = 30
	corpus, err := streamtune.GenerateHistory(graphs, hopts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := streamtune.DefaultConfig()
	cfg.Train.Epochs = 15
	pt, err := streamtune.PreTrain(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}

	pattern := streamtune.PeriodicRatePatterns(1)[0]
	baseRates := map[string]float64{}
	for _, i := range g.Sources() {
		op := g.OperatorAt(i)
		baseRates[op.ID] = op.SourceRate
	}

	type tuners struct {
		name string
		run  func(e *streamtune.Engine) (int, int, int, error)
	}
	st := func() func(e *streamtune.Engine) (int, int, int, error) {
		var tuner *streamtune.Tuner
		return func(e *streamtune.Engine) (int, int, int, error) {
			if tuner == nil {
				var err error
				tuner, err = streamtune.NewTuner(pt, e.Graph())
				if err != nil {
					return 0, 0, 0, err
				}
			}
			res, err := tuner.Tune(e)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents, nil
		}
	}()
	ct := streamtune.NewContTune()

	for _, m := range []tuners{
		{"DS2", func(e *streamtune.Engine) (int, int, int, error) {
			res, err := streamtune.TuneDS2(e)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents, nil
		}},
		{"ContTune", func(e *streamtune.Engine) (int, int, int, error) {
			res, err := ct.Tune(e)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents, nil
		}},
		{"StreamTune", st},
	} {
		eng, err := streamtune.NewEngine(g, streamtune.DefaultEngineConfig(streamtune.Flink))
		if err != nil {
			log.Fatal(err)
		}
		initial := map[string]int{}
		for _, op := range g.Operators() {
			initial[op.ID] = 1
		}
		if err := eng.Deploy(initial); err != nil {
			log.Fatal(err)
		}
		totalRecfg, totalBP := 0, 0
		fmt.Printf("\n=== %s on %s ===\n", m.name, g.Name)
		for step, mult := range pattern.Multipliers {
			if step >= *rateSteps {
				break
			}
			for id, wu := range baseRates {
				if err := eng.SetSourceRate(id, wu*float64(mult)); err != nil {
					log.Fatal(err)
				}
			}
			total, recfg, bp, err := m.run(eng)
			if err != nil {
				log.Fatal(err)
			}
			totalRecfg += recfg
			totalBP += bp
			fmt.Printf("  rate %2dxWu -> total parallelism %3d (%d reconfigs, %d backpressure)\n",
				mult, total, recfg, bp)
		}
		fmt.Printf("  TOTAL: %d reconfigurations, %d backpressure windows\n", totalRecfg, totalBP)
	}
}
