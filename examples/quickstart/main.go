// Command quickstart is the minimal end-to-end StreamTune walkthrough:
// build a small streaming job, generate a synthetic execution history,
// pre-train, and tune the job's parallelism until it is
// backpressure-free.
package main

import (
	"fmt"
	"log"

	"github.com/streamtune/streamtune"
)

func main() {
	// 1. Define a streaming job: source -> filter -> window -> sink.
	job := streamtune.NewGraph("quickstart")
	job.MustAddOperator(&streamtune.Operator{
		ID: "events", Type: streamtune.Source, SourceRate: 1e6, TupleWidthOut: 64,
	})
	job.MustAddOperator(&streamtune.Operator{
		ID: "fraud-filter", Type: streamtune.Filter, Selectivity: 0.3,
		TupleWidthIn: 64, TupleWidthOut: 64,
	})
	job.MustAddOperator(&streamtune.Operator{
		ID: "window-agg", Type: streamtune.WindowOp, Selectivity: 0.1,
		WindowLength: 60, TupleWidthIn: 64, TupleWidthOut: 32,
	})
	job.MustAddOperator(&streamtune.Operator{ID: "sink", Type: streamtune.Sink, TupleWidthIn: 32})
	job.MustAddEdge("events", "fraud-filter")
	job.MustAddEdge("fraud-filter", "window-agg")
	job.MustAddEdge("window-agg", "sink")

	// 2. Generate an execution history for pre-training (in production
	// this comes from your cluster's job archive).
	hopts := streamtune.DefaultHistoryOptions(streamtune.Flink)
	hopts.SamplesPerGraph = 60
	corpus, err := streamtune.GenerateHistory([]*streamtune.Graph{job}, hopts)
	if err != nil {
		log.Fatalf("generate history: %v", err)
	}
	fmt.Printf("history: %d executions\n", corpus.Len())

	// 3. Pre-train the GNN encoders (GED clustering + per-cluster
	// bottleneck classification).
	cfg := streamtune.DefaultConfig()
	cfg.Train.Epochs = 15
	pt, err := streamtune.PreTrain(corpus, cfg)
	if err != nil {
		log.Fatalf("pre-train: %v", err)
	}
	fmt.Printf("pre-trained %d cluster encoder(s) in %v\n", len(pt.Encoders), pt.TrainTime.Round(1e6))

	// 4. Deploy the job on the simulated Flink-flavor engine and tune.
	eng, err := streamtune.NewEngine(job, streamtune.DefaultEngineConfig(streamtune.Flink))
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := streamtune.NewTuner(pt, eng.Graph())
	if err != nil {
		log.Fatalf("new tuner: %v", err)
	}
	res, err := tuner.Tune(eng)
	if err != nil {
		log.Fatalf("tune: %v", err)
	}

	fmt.Printf("recommended parallelism (after %d reconfiguration(s)):\n", res.Reconfigurations)
	for _, op := range job.Operators() {
		fmt.Printf("  %-14s -> %d\n", op.ID, res.Parallelism[op.ID])
	}
	fmt.Printf("backpressure-free: %v, throughput %.0f records/s\n",
		!res.Final.Backpressured, res.Final.Throughput)
}
