package streamtune_test

import (
	"testing"

	"github.com/streamtune/streamtune"
	"github.com/streamtune/streamtune/internal/bottleneck"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
	istreamtune "github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/workload"
)

// TestGoldenOperatorTypeReExports pins every re-exported operator type
// to its internal value: downstream users persist graphs built from the
// facade constants, so a drift would corrupt their data silently.
func TestGoldenOperatorTypeReExports(t *testing.T) {
	golden := []struct {
		name     string
		facade   streamtune.OpType
		internal dag.OpType
	}{
		{"Source", streamtune.Source, dag.Source},
		{"Sink", streamtune.Sink, dag.Sink},
		{"Map", streamtune.Map, dag.Map},
		{"Filter", streamtune.Filter, dag.Filter},
		{"FlatMap", streamtune.FlatMap, dag.FlatMap},
		{"Join", streamtune.Join, dag.Join},
		{"Aggregate", streamtune.Aggregate, dag.Aggregate},
		{"WindowOp", streamtune.WindowOp, dag.WindowOp},
		{"WindowJoin", streamtune.WindowJoin, dag.WindowJoin},
	}
	seen := make(map[dag.OpType]string, len(golden))
	for _, c := range golden {
		if c.facade != c.internal {
			t.Errorf("%s: facade %v != internal %v", c.name, c.facade, c.internal)
		}
		if prev, dup := seen[c.internal]; dup {
			t.Errorf("%s aliases %s", c.name, prev)
		}
		seen[c.internal] = c.name
	}
}

// TestGoldenFlavorAndQueryReExports pins engine flavors, Nexmark query
// ids, and PQP template ids.
func TestGoldenFlavorAndQueryReExports(t *testing.T) {
	if streamtune.Flink != engine.Flink || streamtune.Timely != engine.Timely {
		t.Error("engine flavor re-exports drifted")
	}
	queries := []struct {
		facade   streamtune.NexmarkQuery
		internal nexmark.Query
	}{
		{streamtune.NexmarkQ1, nexmark.Q1},
		{streamtune.NexmarkQ2, nexmark.Q2},
		{streamtune.NexmarkQ3, nexmark.Q3},
		{streamtune.NexmarkQ5, nexmark.Q5},
		{streamtune.NexmarkQ8, nexmark.Q8},
	}
	for _, c := range queries {
		if c.facade != c.internal {
			t.Errorf("query re-export %v != %v", c.facade, c.internal)
		}
	}
	templates := []struct {
		facade   streamtune.PQPTemplate
		internal pqp.Template
	}{
		{streamtune.PQPLinear, pqp.Linear},
		{streamtune.PQPTwoWayJoin, pqp.TwoWayJoin},
		{streamtune.PQPThreeWayJoin, pqp.ThreeWayJoin},
	}
	for _, c := range templates {
		if c.facade != c.internal {
			t.Errorf("template re-export %v != %v", c.facade, c.internal)
		}
	}
	if streamtune.Unlabeled != bottleneck.Unlabeled ||
		streamtune.NonBottleneck != bottleneck.NonBottleneck ||
		streamtune.Bottleneck != bottleneck.Bottleneck {
		t.Error("bottleneck label re-exports drifted")
	}
}

// TestGoldenConstructorsDelegate asserts the facade constructors return
// the same artifacts as the internal packages they wrap.
func TestGoldenConstructorsDelegate(t *testing.T) {
	fg, err := streamtune.BuildNexmark(streamtune.NexmarkQ5, streamtune.Flink)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := nexmark.Build(nexmark.Q5, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	if fg.Name != ig.Name || fg.NumOperators() != ig.NumOperators() || fg.NumEdges() != ig.NumEdges() {
		t.Errorf("BuildNexmark(%s) = %s/%d ops, internal %s/%d ops",
			nexmark.Q5, fg.Name, fg.NumOperators(), ig.Name, ig.NumOperators())
	}

	fp, err := streamtune.BuildPQP(streamtune.PQPTwoWayJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := pqp.Build(pqp.TwoWayJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Name != ip.Name || fp.NumOperators() != ip.NumOperators() {
		t.Errorf("BuildPQP variant drifted: %s vs %s", fp.Name, ip.Name)
	}

	fpats := streamtune.PeriodicRatePatterns(7)
	ipats := workload.PeriodicPatterns(7)
	if len(fpats) != len(ipats) {
		t.Fatalf("patterns = %d, internal %d", len(fpats), len(ipats))
	}
	for i := range fpats {
		if fpats[i].Len() != ipats[i].Len() {
			t.Fatalf("pattern %d length drifted", i)
		}
		for j, m := range fpats[i].Multipliers {
			if ipats[i].Multipliers[j] != m {
				t.Fatalf("pattern %d multiplier %d drifted", i, j)
			}
		}
	}
}

// TestGoldenDefaultConfigDelegates asserts the facade's DefaultConfig
// and engine defaults are the internal ones, including the new Workers
// knob's zero value (auto parallelism).
func TestGoldenDefaultConfigDelegates(t *testing.T) {
	fc := streamtune.DefaultConfig()
	ic := istreamtune.DefaultConfig()
	if fc.Model != ic.Model || fc.Threshold != ic.Threshold ||
		fc.Train.Epochs != ic.Train.Epochs || fc.MaxElbowK != ic.MaxElbowK ||
		fc.Workers != ic.Workers {
		t.Errorf("DefaultConfig drifted: %+v vs %+v", fc, ic)
	}
	if fc.Workers != 0 {
		t.Errorf("DefaultConfig().Workers = %d, want 0 (auto)", fc.Workers)
	}
	fe := streamtune.DefaultEngineConfig(streamtune.Flink)
	ie := engine.DefaultConfig(engine.Flink)
	if fe.MaxParallelism != ie.MaxParallelism || fe.MeasureTicks != ie.MeasureTicks {
		t.Errorf("DefaultEngineConfig drifted: %+v vs %+v", fe, ie)
	}
}
